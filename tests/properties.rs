//! Cross-crate property-based tests on core invariants.

use proptest::prelude::*;
use sammy_repro::abr;
use sammy_repro::fluidsim::{download_chunk, FluidConfig, NetworkProfile};
use sammy_repro::netsim::{Rate, SimDuration};
use sammy_repro::sammy_core::analysis;
use sammy_repro::sammy_core::PaceSelector;
use sammy_repro::video::{Ladder, Title, TitleConfig, VmafModel};

fn profile(capacity_mbps: f64) -> NetworkProfile {
    NetworkProfile {
        capacity: Rate::from_mbps(capacity_mbps),
        base_rtt: SimDuration::from_millis(30),
        bufferbloat: SimDuration::from_millis(40),
        ambient_loss: 0.001,
        self_loss: 0.01,
        jitter_cv: 0.0,
        fade_prob: 0.0,
        fade_depth: 0.1,
    }
}

proptest! {
    /// The pace multiplier always lies between c1 and c0.
    #[test]
    fn pace_multiplier_bounded(c0 in 0.5f64..8.0, c1 in 0.5f64..8.0, fill in -0.5f64..1.5) {
        let p = PaceSelector::new(c0, c1);
        let m = p.multiplier(fill);
        let (lo, hi) = if c0 < c1 { (c0, c1) } else { (c1, c0) };
        prop_assert!(m >= lo - 1e-12 && m <= hi + 1e-12);
    }

    /// Theorem A.1 round trip: buffer_after and achievable_bitrate are
    /// inverses.
    #[test]
    fn theorem_a1_roundtrip(
        b0 in 0.0f64..300.0,
        dur in 10.0f64..3600.0,
        tput in 1e6f64..1e8,
        ratio in 0.05f64..1.0,
    ) {
        let bitrate = tput * ratio;
        let b_end = analysis::buffer_after(b0, dur, bitrate, tput);
        let back = analysis::achievable_bitrate(b0, b_end, dur, tput);
        prop_assert!((back - bitrate).abs() / bitrate < 1e-9);
    }

    /// Eq. 1: the minimum throughput decreases monotonically with buffer
    /// and scales linearly with the bitrate.
    #[test]
    fn eq1_monotonicity(beta in 0.1f64..1.0, r in 1e5f64..2e7, b in 0.0f64..200.0) {
        let d_t = 20.0;
        let x1 = analysis::min_throughput_for_bitrate(beta, r, b, d_t);
        let x2 = analysis::min_throughput_for_bitrate(beta, r, b + 10.0, d_t);
        prop_assert!(x2 < x1);
        let x_double = analysis::min_throughput_for_bitrate(beta, 2.0 * r, b, d_t);
        prop_assert!((x_double - 2.0 * x1).abs() / x1 < 1e-9);
    }

    /// Fluid download time is monotone: more bytes never download faster,
    /// and — within the uncongested regime — a higher pace never downloads
    /// slower. (Crossing the congestion boundary legitimately inflates the
    /// RTT, which can slow a tiny transfer; that is the behaviour Sammy
    /// exploits, not a model bug.)
    #[test]
    fn fluid_download_monotone(
        bytes in 10_000u64..10_000_000,
        pace_ratio in 0.05f64..0.45,
        cap in 5.0f64..200.0,
    ) {
        let pace_mbps = cap * pace_ratio; // 2x pace still below capacity
        let p = profile(cap);
        let cfg = FluidConfig::default();
        let t1 = download_chunk(&p, &cfg, bytes, Some(Rate::from_mbps(pace_mbps)), false, 1.0)
            .download_time;
        let t2 = download_chunk(&p, &cfg, bytes * 2, Some(Rate::from_mbps(pace_mbps)), false, 1.0)
            .download_time;
        prop_assert!(t2 >= t1);
        let t3 = download_chunk(&p, &cfg, bytes, Some(Rate::from_mbps(pace_mbps * 2.0)), false, 1.0)
            .download_time;
        prop_assert!(t3 <= t1);
    }

    /// The fluid model never reports a throughput above min(pace, capacity).
    #[test]
    fn fluid_throughput_bounded(
        bytes in 100_000u64..5_000_000,
        pace_mbps in 1.0f64..200.0,
        cap in 2.0f64..150.0,
        cold in any::<bool>(),
    ) {
        let p = profile(cap);
        let out = download_chunk(
            &p,
            &FluidConfig::default(),
            bytes,
            Some(Rate::from_mbps(pace_mbps)),
            cold,
            1.0,
        );
        let tput_mbps = bytes as f64 * 8.0 / out.download_time.as_secs_f64() / 1e6;
        prop_assert!(tput_mbps <= pace_mbps.min(cap) * 1.001,
            "tput {tput_mbps} exceeds min(pace {pace_mbps}, cap {cap})");
    }

    /// HYB never selects a rung whose bitrate exceeds the analytical cap.
    #[test]
    fn hyb_respects_analytic_cap(tput_mbps in 0.5f64..100.0, buffer_s in 0u64..200) {
        use sammy_repro::video::{AbrContext, Abr, ChunkMeasurement, PlayerPhase, ThroughputHistory};
        use sammy_repro::netsim::SimTime;

        let title = Title::generate(
            Ladder::hd(&VmafModel::standard()),
            &TitleConfig { size_cv: 0.0, ..Default::default() },
        );
        let mut h = ThroughputHistory::new();
        for i in 0..5 {
            h.record(ChunkMeasurement {
                index: i,
                rung: 0,
                bytes: (tput_mbps * 1e6 / 8.0) as u64,
                download_time: SimDuration::from_secs(1),
                completed_at: SimTime::ZERO,
            });
        }
        let mut hyb = abr::Hyb::default();
        let ctx = AbrContext {
            now: SimTime::ZERO,
            phase: PlayerPhase::Playing,
            buffer: SimDuration::from_secs(buffer_s),
            max_buffer: SimDuration::from_secs(240),
            ladder: &title.ladder,
            upcoming: title.upcoming(0),
            history: &h,
            last_rung: None,
        };
        let d = hyb.select(&ctx);
        let cap = analysis::max_bitrate_for_throughput(0.5, tput_mbps * 1e6, buffer_s as f64, 20.0);
        prop_assert!(
            title.ladder.rung(d.rung).bitrate.bps() <= cap * 1.001,
            "rung {} bitrate {} exceeds cap {cap}",
            d.rung,
            title.ladder.rung(d.rung).bitrate.bps()
        );
    }

    /// Sammy's default parameters keep headroom over the Eq. 1 threshold
    /// for every buffer capacity and HYB beta in the practical range.
    #[test]
    fn sammy_defaults_always_safe(beta in 0.4f64..1.0, max_buf in 60.0f64..600.0) {
        let headroom = PaceSelector::default().validate_against_threshold(beta, 20.0, max_buf);
        prop_assert!(headroom >= 1.0, "headroom {headroom} at beta {beta}");
    }

    /// The engine's dense Vec-indexed routing tables behave exactly like a
    /// `HashMap<(node, dst), link>` reference model on random tree
    /// topologies: every injected packet follows the modelled path and is
    /// delivered (queues are oversized, so the model predicts zero drops),
    /// with per-flow stats matching the model's packet and byte counts in
    /// both the dense (< 4096) and overflow flow-id regimes.
    #[test]
    fn vec_routing_matches_hashmap_model(n in 2usize..8, seed in 1u64..1_000_000) {
        use sammy_repro::netsim::{FlowId, LinkConfig, Packet, Payload, Rate, Simulator};
        use std::collections::HashMap;

        let mut lcg = seed;
        let mut draw = move |m: u64| {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (lcg >> 33) % m
        };

        let mut sim = Simulator::new();
        let nodes: Vec<_> = (0..n).map(|_| sim.add_node()).collect();

        // Random spanning tree; duplex links with varying rates/delays and
        // queues far larger than the injected traffic.
        let mut adj = vec![Vec::new(); n]; // (neighbor, link out of this node)
        for i in 1..n {
            let p = draw(i as u64) as usize;
            let cfg = LinkConfig::new(
                Rate::from_mbps(10.0 + draw(50) as f64),
                SimDuration::from_millis(1 + draw(20)),
                10_000_000,
            );
            let (ab, ba) = sim.add_duplex_link(nodes[p], nodes[i], cfg);
            adj[p].push((i, ab));
            adj[i].push((p, ba));
        }

        // Reference model: next-hop link for every ordered pair, via BFS.
        let mut model = HashMap::new();
        for src in 0..n {
            let mut prev = vec![usize::MAX; n];
            let mut queue = std::collections::VecDeque::from([src]);
            prev[src] = src;
            while let Some(u) = queue.pop_front() {
                for &(v, _) in &adj[u] {
                    if prev[v] == usize::MAX {
                        prev[v] = u;
                        queue.push_back(v);
                    }
                }
            }
            for dst in 0..n {
                if dst == src {
                    continue;
                }
                // Walk back from dst to find the first hop out of src.
                let mut hop = dst;
                while prev[hop] != src {
                    hop = prev[hop];
                }
                let link = adj[src].iter().find(|&&(v, _)| v == hop).unwrap().1;
                model.insert((src, dst), link);
                sim.add_route(nodes[src], nodes[dst], link);
            }
        }

        // Model self-check: walking the table reaches the destination.
        for (&(src, dst), &first) in &model {
            let mut at = src;
            let mut via = first;
            for _ in 0..n {
                at = sim.link(via).dst.0;
                if at == dst {
                    break;
                }
                via = model[&(at, dst)];
            }
            prop_assert_eq!(at, dst, "model walk stranded {} -> {}", src, dst);
        }

        // Inject traffic on random pairs, mixing dense and overflow flow
        // ids, and tally what the model says each flow must deliver.
        let mut expect: HashMap<u64, (u64, u64)> = HashMap::new(); // id -> (pkts, bytes)
        for _ in 0..(1 + draw(12)) {
            let src = draw(n as u64) as usize;
            let dst = (src + 1 + draw(n as u64 - 1) as usize) % n;
            let flow = if draw(2) == 0 { draw(16) } else { 4096 + draw(16) };
            let bytes = 200 + draw(1300);
            let e = expect.entry(flow).or_insert((0, 0));
            e.0 += 1;
            e.1 += bytes;
            sim.inject(
                nodes[src],
                Packet::new(nodes[src], nodes[dst], FlowId(flow), Payload::Datagram { seq: 0 })
                    .with_size(bytes),
            );
        }
        sim.run_to_completion();
        for (&flow, &(pkts, bytes)) in &expect {
            let st = sim.flow_stats(FlowId(flow));
            prop_assert_eq!(st.delivered_packets, pkts, "flow {} packets", flow);
            prop_assert_eq!(st.delivered_bytes, bytes, "flow {} bytes", flow);
            prop_assert_eq!(st.dropped_packets, 0u64, "flow {} drops", flow);
        }
    }

    /// MPC's closed-form (prefix-sum + upper-envelope) rebuffer term and
    /// rung choice agree with a naive per-chunk buffer walk over the same
    /// horizon, across random titles, lookahead offsets, and conditions.
    #[test]
    fn mpc_envelope_matches_naive_walk(
        title_seed in 0u64..5_000,
        from in 0usize..300,
        buffer_s in 0u64..120,
        tput_mbps in 0.3f64..60.0,
        last in 0usize..10,
    ) {
        use sammy_repro::video::{Abr, AbrContext, ChunkMeasurement, PlayerPhase, ThroughputHistory};
        use sammy_repro::netsim::SimTime;

        let title = Title::generate(
            Ladder::hd(&VmafModel::standard()),
            &TitleConfig { seed: title_seed, ..Default::default() },
        );
        let mut h = ThroughputHistory::new();
        for i in 0..5 {
            h.record(ChunkMeasurement {
                index: i,
                rung: 0,
                bytes: (tput_mbps * 1e6 / 8.0) as u64,
                download_time: SimDuration::from_secs(1),
                completed_at: SimTime::ZERO,
            });
        }
        let last_rung = if last >= title.ladder.len() { None } else { Some(last) };
        let ctx = AbrContext {
            now: SimTime::ZERO,
            phase: PlayerPhase::Playing,
            buffer: SimDuration::from_secs(buffer_s),
            max_buffer: SimDuration::from_secs(240),
            ladder: &title.ladder,
            upcoming: title.upcoming(from),
            history: &h,
            last_rung,
        };
        let got = abr::Mpc::default().select(&ctx).rung;

        // Naive reference: simulate the buffer chunk by chunk (horizon 5,
        // the default) and take the same argmax with upward tie-breaks.
        let predicted = tput_mbps * 1e6 / 1.25; // window harmonic mean / (1 + margin)
        let horizon = 5usize.min(ctx.upcoming.len());
        let mut best = 0;
        let mut best_u = f64::NEG_INFINITY;
        for rung in 0..ctx.ladder.len() {
            let mut buf = buffer_s as f64;
            let mut rebuf = 0.0;
            let mut quality = 0.0;
            for i in 0..horizon {
                let c = ctx.upcoming.chunk(i);
                let dl = c.size(rung) as f64 * 8.0 / predicted;
                if dl > buf {
                    rebuf += dl - buf;
                    buf = 0.0;
                } else {
                    buf -= dl;
                }
                buf += c.duration().as_secs_f64();
                quality += ctx.ladder.rung(rung).vmaf * c.duration().as_secs_f64();
            }
            let switch = last_rung.map_or(0.0, |p| {
                (ctx.ladder.rung(p).vmaf - ctx.ladder.rung(rung).vmaf).abs()
            });
            let u = quality - 1.0 * switch - 500.0 * rebuf;
            if u >= best_u {
                best_u = u;
                best = rung;
            }
        }
        prop_assert_eq!(got, best, "envelope chose {}, naive walk chose {}", got, best);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// N homogeneous Reno bulk flows sharing the ISP-core queue under
    /// per-flow DRR fair queuing split the bottleneck evenly: Jain's
    /// index over delivered bytes is at least 0.95.
    #[test]
    fn drr_gives_reno_flows_jain_fairness(n in 2usize..6, rate_step in 0u64..3) {
        use sammy_repro::netsim::{
            Discipline, DrrConfig, FlowId, LinkConfig, Rate, SharedTopology,
            SharedTopologyConfig, SimTime, Simulator,
        };
        use sammy_repro::sammy_bench::shared::jain_index;
        use sammy_repro::traffic::{BulkReceiver, BulkSender};
        use sammy_repro::transport::TcpConfig;

        let core_rate = Rate::from_mbps(16.0 + 8.0 * rate_step as f64);
        let topo_cfg = SharedTopologyConfig {
            cross_pairs: n,
            core: LinkConfig::with_bdp_queue(
                core_rate,
                SimDuration::from_micros(2500),
                SimDuration::from_millis(5),
                4.0,
            )
            .with_discipline(Discipline::Drr(DrrConfig::default())),
            ..Default::default()
        };
        let mut sim = Simulator::new();
        let topo = SharedTopology::build(&mut sim, topo_cfg);
        for i in 0..n {
            let flow = FlowId(100 + i as u64);
            BulkSender::new(
                topo.cross_sources[i],
                topo.cross_sinks[i],
                flow,
                TcpConfig::default(),
                100_000_000, // effectively unbounded for the run length
                SimTime::ZERO,
            )
            .install(&mut sim);
            sim.set_endpoint(
                topo.cross_sinks[i],
                Box::new(BulkReceiver::new(
                    topo.cross_sinks[i],
                    topo.cross_sources[i],
                    flow,
                )),
            );
        }
        sim.run_until(SimTime::from_secs(8));
        let shares: Vec<f64> = (0..n)
            .map(|i| sim.flow_stats(FlowId(100 + i as u64)).delivered_bytes as f64)
            .collect();
        let j = jain_index(&shares);
        prop_assert!(j >= 0.95, "jain {} over {:?} at {:?}", j, shares, core_rate);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Queue byte/packet conservation across random multi-hop topologies
    /// with mixed queue disciplines (drop-tail, RED, CoDel, DRR, token
    /// bucket) and tight buffers: once the network drains, every flow's
    /// always-on ledger balances (injected = delivered + dropped, in both
    /// packets and bytes) and every queue is empty. Under
    /// `--features validate` the same runs also execute the engine's
    /// topology-conservation invariant at every run boundary.
    #[test]
    fn multi_hop_mixed_disciplines_conserve_bytes(n in 2usize..8, seed in 1u64..1_000_000) {
        use sammy_repro::netsim::{
            CoDelConfig, Discipline, DrrConfig, FlowId, LinkConfig, Packet, Payload,
            Rate, RedConfig, Simulator, TokenBucketConfig,
        };
        use std::collections::HashMap;

        let mut lcg = seed;
        let mut draw = move |m: u64| {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (lcg >> 33) % m
        };

        let mut sim = Simulator::new();
        let nodes: Vec<_> = (0..n).map(|_| sim.add_node()).collect();

        // Random spanning tree; each duplex link gets a random discipline
        // and a queue small enough that bursts overflow it.
        let mut adj = vec![Vec::new(); n];
        for i in 1..n {
            let p = draw(i as u64) as usize;
            let disc = match draw(5) {
                0 => Discipline::DropTail,
                1 => Discipline::Red(RedConfig::default()),
                2 => Discipline::CoDel(CoDelConfig::default()),
                3 => Discipline::Drr(DrrConfig::default()),
                _ => Discipline::TokenBucket(TokenBucketConfig::new(
                    Rate::from_mbps(2.0 + draw(20) as f64),
                    6_000,
                )),
            };
            let cfg = LinkConfig::new(
                Rate::from_mbps(10.0 + draw(50) as f64),
                SimDuration::from_millis(1 + draw(10)),
                3_000 + draw(40_000),
            )
            .with_discipline(disc);
            let (ab, ba) = sim.add_duplex_link(nodes[p], nodes[i], cfg);
            adj[p].push((i, ab));
            adj[i].push((p, ba));
        }

        // Routes for every ordered pair via BFS parent pointers.
        for src in 0..n {
            let mut prev = vec![usize::MAX; n];
            let mut queue = std::collections::VecDeque::from([src]);
            prev[src] = src;
            while let Some(u) = queue.pop_front() {
                for &(v, _) in &adj[u] {
                    if prev[v] == usize::MAX {
                        prev[v] = u;
                        queue.push_back(v);
                    }
                }
            }
            for dst in 0..n {
                if dst == src {
                    continue;
                }
                let mut hop = dst;
                while prev[hop] != src {
                    hop = prev[hop];
                }
                let link = adj[src].iter().find(|&&(v, _)| v == hop).unwrap().1;
                sim.add_route(nodes[src], nodes[dst], link);
            }
        }

        // Burst random traffic between random pairs.
        let mut injected: HashMap<u64, (u64, u64)> = HashMap::new(); // id -> (pkts, bytes)
        for _ in 0..(5 + draw(60)) {
            let src = draw(n as u64) as usize;
            let dst = (src + 1 + draw(n as u64 - 1) as usize) % n;
            let flow = draw(6);
            let bytes = 200 + draw(1300);
            let e = injected.entry(flow).or_insert((0, 0));
            e.0 += 1;
            e.1 += bytes;
            sim.inject(
                nodes[src],
                Packet::new(nodes[src], nodes[dst], FlowId(flow), Payload::Datagram { seq: 0 })
                    .with_size(bytes),
            );
        }
        sim.run_to_completion();

        // Per-flow ledger: nothing created, nothing silently destroyed.
        for (&flow, &(pkts, bytes)) in &injected {
            let st = sim.flow_stats(FlowId(flow));
            prop_assert_eq!(st.injected_packets, pkts, "flow {} injected pkts", flow);
            prop_assert_eq!(st.injected_bytes, bytes, "flow {} injected bytes", flow);
            prop_assert_eq!(
                st.delivered_packets + st.dropped_packets, pkts,
                "flow {} pkts: delivered {} + dropped {} != {}",
                flow, st.delivered_packets, st.dropped_packets, pkts
            );
            prop_assert_eq!(
                st.delivered_bytes + st.dropped_bytes, bytes,
                "flow {} bytes: delivered {} + dropped {} != {}",
                flow, st.delivered_bytes, st.dropped_bytes, bytes
            );
        }
        // Every queue fully drained.
        for edges in adj.iter().skip(1) {
            for &(_, link) in edges {
                prop_assert_eq!(sim.link(link).queue.len(), 0usize);
                prop_assert_eq!(sim.link(link).queue.occupied_bytes(), 0u64);
            }
        }
    }
}
