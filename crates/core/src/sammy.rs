//! Sammy — Algorithm 1: joint bitrate and pace-rate selection.
//!
//! Sammy composes three pieces (§4):
//!
//! 1. **Initial phase** (§4.1): bitrate selection from *initial-only*
//!    historical throughput, with **no pacing** — play delay is the binding
//!    QoE goal and the initial phase is a tiny fraction of traffic.
//! 2. **Playing phase** bitrate: any pacing-aware ABR (one whose selection
//!    depends on a threshold decision rather than an exact bandwidth
//!    estimate — MPC/HYB/BBA all qualify per §4.2).
//! 3. **Playing phase** pace rate: the buffer-interpolated multiplier of
//!    the top ladder bitrate ([`PaceSelector`]).

use crate::pace::PaceSelector;
use abr::{HistoryPolicy, ProductionAbr, SharedHistory};
use video::{Abr, AbrContext, AbrDecision, ChunkMeasurement, PlayerPhase};

/// Sammy's configuration: the pace selector plus the inner ABR's knobs are
/// carried by the inner ABR itself.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SammyConfig {
    /// The pace-rate multipliers.
    pub pace: PaceSelector,
}

/// Sammy: a pacing-aware ABR wrapper implementing Algorithm 1.
///
/// `P` is the playing-phase ABR (the production stand-in uses
/// [`abr::Mpc`]). Initial-phase selection and the initial-only history
/// policy come from [`ProductionAbr`].
pub struct Sammy<P: Abr> {
    inner: ProductionAbr<P>,
    cfg: SammyConfig,
}

impl<P: Abr> Sammy<P> {
    /// Build Sammy around a playing-phase ABR and the device's historical
    /// store. The store is updated under [`HistoryPolicy::InitialOnly`], as
    /// §4.1 requires.
    pub fn new(playing: P, history: SharedHistory, cfg: SammyConfig) -> Self {
        Sammy {
            inner: ProductionAbr::new(playing, history, HistoryPolicy::InitialOnly),
            cfg,
        }
    }

    /// The pace configuration.
    pub fn config(&self) -> SammyConfig {
        self.cfg
    }
}

impl<P: Abr> Abr for Sammy<P> {
    fn select(&mut self, ctx: &AbrContext<'_>) -> AbrDecision {
        let mut d = self.inner.select(ctx);
        d.pace = match ctx.phase {
            // Initial phase: no pacing (Algorithm 1).
            PlayerPhase::Initial => None,
            PlayerPhase::Playing => {
                let fill =
                    (ctx.buffer.as_secs_f64() / ctx.max_buffer.as_secs_f64()).clamp(0.0, 1.0);
                Some(self.cfg.pace.pace_rate(ctx.ladder.top_bitrate(), fill))
            }
        };
        d
    }

    fn on_chunk_downloaded(&mut self, m: &ChunkMeasurement) {
        self.inner.on_chunk_downloaded(m);
    }

    fn name(&self) -> &'static str {
        "sammy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr::{shared_history, Mpc};
    use netsim::{Rate, SimDuration, SimTime};
    use video::{Ladder, ThroughputHistory, Title, TitleConfig, VmafModel};

    fn title() -> Title {
        Title::generate(
            Ladder::lab(&VmafModel::standard()),
            &TitleConfig {
                size_cv: 0.0,
                ..Default::default()
            },
        )
    }

    fn ctx<'a>(
        t: &'a Title,
        h: &'a ThroughputHistory,
        phase: PlayerPhase,
        buffer_s: u64,
    ) -> AbrContext<'a> {
        AbrContext {
            now: SimTime::ZERO,
            phase,
            buffer: SimDuration::from_secs(buffer_s),
            max_buffer: SimDuration::from_secs(240),
            ladder: &t.ladder,
            upcoming: t.upcoming(0),
            history: h,
            last_rung: None,
        }
    }

    fn sammy() -> Sammy<Mpc> {
        Sammy::new(Mpc::default(), shared_history(), SammyConfig::default())
    }

    #[test]
    fn initial_phase_unpaced() {
        let t = title();
        let h = ThroughputHistory::new();
        let d = sammy().select(&ctx(&t, &h, PlayerPhase::Initial, 0));
        assert_eq!(d.pace, None);
    }

    #[test]
    fn playing_phase_paces_off_top_bitrate() {
        let t = title();
        let h = ThroughputHistory::new();
        let mut s = sammy();
        // Empty buffer: 3.2 x 3.3 Mbps.
        let d = s.select(&ctx(&t, &h, PlayerPhase::Playing, 0));
        let pace = d.pace.expect("playing phase must pace");
        assert!((pace.mbps() - 3.2 * 3.3).abs() < 1e-9);
        // Full buffer: 2.8 x 3.3 Mbps.
        let d = s.select(&ctx(&t, &h, PlayerPhase::Playing, 240));
        let pace = d.pace.unwrap();
        assert!((pace.mbps() - 2.8 * 3.3).abs() < 1e-9);
        // Half: 3.0 x.
        let d = s.select(&ctx(&t, &h, PlayerPhase::Playing, 120));
        let pace = d.pace.unwrap();
        assert!((pace.mbps() - 3.0 * 3.3).abs() < 1e-9);
    }

    #[test]
    fn pace_independent_of_selected_rung() {
        // Pace keys off the ladder's top bitrate, not the chosen rung —
        // so a low-quality pick still gets enough headroom to climb back.
        let t = title();
        let mut h = ThroughputHistory::new();
        h.record(ChunkMeasurement {
            index: 0,
            rung: 0,
            bytes: 50_000, // slow measurement => low rung chosen
            download_time: SimDuration::from_secs(1),
            completed_at: SimTime::ZERO,
        });
        let mut s = sammy();
        let d = s.select(&ctx(&t, &h, PlayerPhase::Playing, 0));
        assert!(d.rung < t.ladder.top());
        assert!((d.pace.unwrap().mbps() - 3.2 * 3.3).abs() < 1e-9);
    }

    #[test]
    fn history_updates_initial_only() {
        let t = title();
        let h = ThroughputHistory::new();
        let store = shared_history();
        let mut s = Sammy::new(Mpc::default(), store.clone(), SammyConfig::default());
        // Playing-phase measurement: ignored by the store.
        let _ = s.select(&ctx(&t, &h, PlayerPhase::Playing, 10));
        s.on_chunk_downloaded(&ChunkMeasurement {
            index: 0,
            rung: 0,
            bytes: 1_000_000,
            download_time: SimDuration::from_secs(1),
            completed_at: SimTime::ZERO,
        });
        assert_eq!(store.samples(), 0);
        // Initial-phase measurement: absorbed.
        let _ = s.select(&ctx(&t, &h, PlayerPhase::Initial, 0));
        s.on_chunk_downloaded(&ChunkMeasurement {
            index: 0,
            rung: 0,
            bytes: 1_000_000,
            download_time: SimDuration::from_secs(1),
            completed_at: SimTime::ZERO,
        });
        assert_eq!(store.samples(), 1);
        store.end_session();
        assert!(
            (store.estimate().unwrap() - Rate::from_mbps(8.0))
                .bps()
                .abs()
                < 1.0
        );
    }

    use video::ChunkMeasurement;
}
