//! BOLA — Lyapunov-based buffer-only bitrate adaptation ([65] in the
//! paper's related work; the algorithm behind dash.js's steady-state mode).
//!
//! BOLA selects the rung maximizing `(V·u_m + V·γ·p − Q) / S_m`, where
//! `u_m` is the rung's utility (log of relative size), `S_m` its chunk
//! size, `Q` the current buffer in chunk units, and `V`, `γp` control the
//! buffer operating point. It consults no throughput estimate at all in
//! steady state, which makes it naturally pacing-tolerant — a useful
//! contrast to throughput-based algorithms when studying Sammy: BOLA keeps
//! its decisions unchanged under any pace rate that still grows the buffer.

use video::{Abr, AbrContext, AbrDecision, PlayerPhase};

/// Configuration for [`Bola`].
#[derive(Debug, Clone, Copy)]
pub struct BolaConfig {
    /// Target buffer level in seconds (sets the control parameter `V`).
    pub target_buffer_s: f64,
    /// Minimum buffer (in seconds) BOLA treats as its low threshold.
    pub min_buffer_s: f64,
    /// Safety factor on the startup throughput estimate (startup only).
    pub startup_safety: f64,
}

impl Default for BolaConfig {
    fn default() -> Self {
        BolaConfig {
            target_buffer_s: 60.0,
            min_buffer_s: 8.0,
            startup_safety: 0.8,
        }
    }
}

/// Lyapunov utility-maximizing buffer-based ABR.
#[derive(Debug, Clone)]
pub struct Bola {
    cfg: BolaConfig,
    /// Reusable per-select scratch (normalized sizes / log utilities), so
    /// steady-state selection allocates nothing after the first chunk.
    sizes: Vec<f64>,
    utilities: Vec<f64>,
}

impl Bola {
    /// Create a BOLA instance.
    ///
    /// # Panics
    /// Panics unless `0 < min_buffer_s < target_buffer_s`.
    pub fn new(cfg: BolaConfig) -> Self {
        assert!(cfg.min_buffer_s > 0.0, "min buffer must be positive");
        assert!(
            cfg.target_buffer_s > cfg.min_buffer_s,
            "target must exceed the minimum buffer"
        );
        Bola {
            cfg,
            sizes: Vec::new(),
            utilities: Vec::new(),
        }
    }

    /// The BOLA objective for one rung: `(V(u_m + γp) − Q) / S_m`, in
    /// units where chunk sizes are normalized by the lowest rung's size.
    fn objective(
        &self,
        utilities: &[f64],
        sizes: &[f64],
        rung: usize,
        buffer_s: f64,
        chunk_s: f64,
    ) -> f64 {
        // Derive V and γp from the two buffer anchors, following the BOLA
        // paper's design rules: at `min_buffer` the lowest rung's objective
        // crosses zero; at `target_buffer` the highest rung's does.
        let q = buffer_s / chunk_s; // buffer in chunk units
        let q_min = self.cfg.min_buffer_s / chunk_s;
        let q_max = self.cfg.target_buffer_s / chunk_s;
        let u_top = utilities[utilities.len() - 1];
        // Solve V(u_low + gp) = q_min with u_low = 0, and V(u_top + gp) = q_max.
        // => V*gp = q_min; V = (q_max - q_min)/u_top.
        let v = (q_max - q_min) / u_top.max(1e-9);
        let vgp = q_min;
        (v * utilities[rung] + vgp - q) / sizes[rung]
    }
}

impl Default for Bola {
    fn default() -> Self {
        Bola::new(BolaConfig::default())
    }
}

impl Abr for Bola {
    fn select(&mut self, ctx: &AbrContext<'_>) -> AbrDecision {
        // Startup: throughput-based (BOLA-U style), as in dash.js.
        if ctx.phase == PlayerPhase::Initial {
            let rung = match ctx.history.ewma(0.5) {
                Some(est) => ctx.ladder.highest_at_most(est * self.cfg.startup_safety),
                None => ctx.ladder.lowest(),
            };
            return AbrDecision::unpaced(rung);
        }

        let chunk_s = if ctx.upcoming.is_empty() {
            4.0
        } else {
            ctx.upcoming.chunk(0).duration().as_secs_f64()
        };
        // Normalized sizes and log utilities relative to the lowest rung.
        let s0 = ctx.ladder.rung(0).bitrate.bps();
        self.sizes.clear();
        self.sizes
            .extend(ctx.ladder.rungs().iter().map(|r| r.bitrate.bps() / s0));
        self.utilities.clear();
        self.utilities.extend(self.sizes.iter().map(|s| s.ln()));

        let buffer_s = ctx.buffer.as_secs_f64();
        // Below the low threshold, take the lowest rung outright (the
        // dash.js insufficient-buffer rule); the objective's anchors only
        // order rungs correctly above it.
        if buffer_s < self.cfg.min_buffer_s {
            return AbrDecision::unpaced(ctx.ladder.lowest());
        }
        let mut best = ctx.ladder.lowest();
        let mut best_obj = f64::NEG_INFINITY;
        for rung in 0..ctx.ladder.len() {
            let obj = self.objective(&self.utilities, &self.sizes, rung, buffer_s, chunk_s);
            if obj > best_obj {
                best_obj = obj;
                best = rung;
            }
        }
        AbrDecision::unpaced(best)
    }

    fn name(&self) -> &'static str {
        "bola"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{SimDuration, SimTime};
    use video::{Ladder, ThroughputHistory, Title, TitleConfig, VmafModel};

    fn title() -> Title {
        Title::generate(
            Ladder::hd(&VmafModel::standard()),
            &TitleConfig {
                size_cv: 0.0,
                ..Default::default()
            },
        )
    }

    fn ctx<'a>(t: &'a Title, h: &'a ThroughputHistory, buffer_s: u64) -> AbrContext<'a> {
        AbrContext {
            now: SimTime::ZERO,
            phase: PlayerPhase::Playing,
            buffer: SimDuration::from_secs(buffer_s),
            max_buffer: SimDuration::from_secs(240),
            ladder: &t.ladder,
            upcoming: t.upcoming(0),
            history: h,
            last_rung: None,
        }
    }

    #[test]
    fn low_buffer_low_rung() {
        let t = title();
        let h = ThroughputHistory::new();
        let d = Bola::default().select(&ctx(&t, &h, 2));
        assert_eq!(d.rung, 0);
    }

    #[test]
    fn target_buffer_reaches_top() {
        let t = title();
        let h = ThroughputHistory::new();
        let d = Bola::default().select(&ctx(&t, &h, 80));
        assert_eq!(d.rung, t.ladder.top());
    }

    #[test]
    fn monotone_in_buffer() {
        let t = title();
        let h = ThroughputHistory::new();
        let mut bola = Bola::default();
        let mut prev = 0;
        for buf in (0..=100).step_by(5) {
            let d = bola.select(&ctx(&t, &h, buf));
            assert!(
                d.rung >= prev,
                "rung fell from {prev} to {} at buffer {buf}",
                d.rung
            );
            prev = d.rung;
        }
    }

    #[test]
    fn decisions_are_throughput_independent() {
        // BOLA's steady-state choice must not depend on throughput history
        // at all — the property that makes it pacing-tolerant.
        let t = title();
        let empty = ThroughputHistory::new();
        let mut rich = ThroughputHistory::new();
        for i in 0..20 {
            rich.record(video::ChunkMeasurement {
                index: i,
                rung: 0,
                bytes: 10_000_000,
                download_time: SimDuration::from_secs(1),
                completed_at: SimTime::ZERO,
            });
        }
        let mut bola = Bola::default();
        for buf in [5u64, 20, 40, 70, 100] {
            let a = bola.select(&ctx(&t, &empty, buf));
            let b = bola.select(&ctx(&t, &rich, buf));
            assert_eq!(
                a.rung, b.rung,
                "history changed BOLA's choice at buffer {buf}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "target must exceed")]
    fn invalid_config_panics() {
        Bola::new(BolaConfig {
            target_buffer_s: 5.0,
            min_buffer_s: 8.0,
            startup_safety: 0.8,
        });
    }
}
