//! Property-based tests for the transport layer: every transfer completes
//! exactly, regardless of loss induced by queue sizes, pacing, or chunk
//! sizes.

use netsim::prelude::*;
use proptest::prelude::*;
use transport::{
    BbrLite, CongestionControl, Pacer, Protocol, ReceiverEndpoint, SenderEndpoint, TcpConfig,
};

/// Run one request/response transfer, returning (delivered stream bytes,
/// retransmit fraction, completed transfers).
fn run(
    bytes: u64,
    pace_mbps: Option<f64>,
    rate_mbps: f64,
    queue_mult: f64,
    burst: u32,
) -> (u64, f64, usize) {
    let mut sim = Simulator::new();
    let db = Dumbbell::build(
        &mut sim,
        DumbbellConfig {
            bottleneck_rate: Rate::from_mbps(rate_mbps),
            queue_bdp_multiple: queue_mult,
            ..Default::default()
        },
    );
    let flow = FlowId(1);
    sim.set_endpoint(
        db.left[0],
        Box::new(SenderEndpoint::new(
            db.left[0],
            db.right[0],
            flow,
            TcpConfig {
                max_burst_packets: burst,
                ..Default::default()
            },
        )),
    );
    sim.set_endpoint(
        db.right[0],
        Box::new(ReceiverEndpoint::new(db.right[0], db.left[0], flow)),
    );
    let req = Packet::new(
        db.right[0],
        db.left[0],
        flow,
        Payload::Request {
            id: 0,
            size: bytes,
            pace_bps: pace_mbps.map(|m| m * 1e6),
        },
    );
    sim.inject(db.right[0], req);
    sim.run_until(SimTime::from_secs(300));

    let server: &mut SenderEndpoint = sim.endpoint_mut(db.left[0]).unwrap();
    let retx = server.sender().stats().retransmit_fraction();
    let done = server.completed.len();
    let client: &mut ReceiverEndpoint = sim.endpoint_mut(db.right[0]).unwrap();
    (client.receiver().contiguous_bytes(), retx, done)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reliability: every byte of every transfer is eventually delivered in
    /// order, across queue sizes that force heavy loss.
    #[test]
    fn transfers_always_complete(
        kb in 10u64..2000,
        rate in 2.0f64..60.0,
        queue_mult in 0.5f64..6.0,
        burst in 1u32..40,
    ) {
        let bytes = kb * 1000;
        let (delivered, _retx, done) = run(bytes, None, rate, queue_mult, burst);
        prop_assert_eq!(delivered, bytes);
        prop_assert_eq!(done, 1);
    }

    /// Pacing below the bottleneck eliminates retransmissions entirely.
    #[test]
    fn paced_below_capacity_is_lossless(
        kb in 50u64..1500,
        rate in 10.0f64..80.0,
    ) {
        let pace = rate * 0.5;
        let (delivered, retx, _) = run(kb * 1000, Some(pace), rate, 4.0, 4);
        prop_assert_eq!(delivered, kb * 1000);
        prop_assert!(retx == 0.0, "retx {retx} with pace {pace} < rate {rate}");
    }

    /// Paced transfers never beat the pace rate (with a small burst bucket;
    /// the default 40-packet bucket deliberately allows a 60 kB line-rate
    /// burst, which dominates transfers of comparable size — that is the
    /// burst-size effect of the paper's Fig 4, tested separately).
    #[test]
    fn pace_is_an_upper_bound(kb in 100u64..1000, pace in 2.0f64..20.0) {
        let bytes = kb * 1000;
        let mut sim = Simulator::new();
        let db = Dumbbell::build(&mut sim, DumbbellConfig::default());
        let flow = FlowId(1);
        sim.set_endpoint(
            db.left[0],
            Box::new(SenderEndpoint::new(
                db.left[0],
                db.right[0],
                flow,
                TcpConfig { max_burst_packets: 4, ..Default::default() },
            )),
        );
        sim.set_endpoint(
            db.right[0],
            Box::new(ReceiverEndpoint::new(db.right[0], db.left[0], flow)),
        );
        let req = Packet::new(
            db.right[0],
            db.left[0],
            flow,
            Payload::Request { id: 0, size: bytes, pace_bps: Some(pace * 1e6) },
        );
        sim.inject(db.right[0], req);
        sim.run_until(SimTime::from_secs(600));
        let server: &mut SenderEndpoint = sim.endpoint_mut(db.left[0]).unwrap();
        prop_assert_eq!(server.completed.len(), 1);
        let tput = server.completed[0].throughput().mbps();
        // Allow the initial burst allowance a little slack on tiny files.
        prop_assert!(tput <= pace * 1.15, "tput {tput} > pace {pace}");
    }

    /// Reliability holds on the QUIC-style transport too: selective
    /// retransmission delivers every byte across loss-inducing queues.
    #[test]
    fn quic_transfers_always_complete(
        kb in 10u64..2000,
        rate in 2.0f64..60.0,
        queue_mult in 0.5f64..6.0,
        burst in 1u32..40,
    ) {
        let bytes = kb * 1000;
        let mut sim = Simulator::new();
        let db = Dumbbell::build(
            &mut sim,
            DumbbellConfig {
                bottleneck_rate: Rate::from_mbps(rate),
                queue_bdp_multiple: queue_mult,
                ..Default::default()
            },
        );
        let flow = FlowId(1);
        sim.set_endpoint(
            db.left[0],
            Box::new(SenderEndpoint::new(
                db.left[0],
                db.right[0],
                flow,
                TcpConfig {
                    transport: Protocol::Quic,
                    max_burst_packets: burst,
                    ..Default::default()
                },
            )),
        );
        sim.set_endpoint(
            db.right[0],
            Box::new(ReceiverEndpoint::with_protocol(
                db.right[0],
                db.left[0],
                flow,
                Protocol::Quic,
            )),
        );
        let req = Packet::new(
            db.right[0],
            db.left[0],
            flow,
            Payload::Request { id: 0, size: bytes, pace_bps: None },
        );
        sim.inject(db.right[0], req);
        sim.run_until(SimTime::from_secs(300));
        let server: &mut SenderEndpoint = sim.endpoint_mut(db.left[0]).unwrap();
        prop_assert_eq!(server.completed.len(), 1);
        let client: &mut ReceiverEndpoint = sim.endpoint_mut(db.right[0]).unwrap();
        prop_assert_eq!(client.receiver().contiguous_bytes(), bytes);
    }
}

/// Greedily send MTU packets through `p` until `end`, starting at `now`.
/// Returns (bytes sent, time after the last attempt).
fn greedy_send(p: &mut Pacer, mut now: SimTime, end: SimTime) -> (u64, SimTime) {
    let mut sent = 0u64;
    while now < end {
        if p.can_send(now, MTU_BYTES) {
            p.on_send(now, MTU_BYTES);
            sent += MTU_BYTES;
        } else {
            // A sub-nanosecond token deficit rounds the wait to zero; nudge
            // forward like the endpoints do so the loop always advances.
            match p.next_release(now, MTU_BYTES) {
                Some(t) if t <= end => {
                    now = t.max(now + SimDuration::from_micros(1));
                }
                _ => break,
            }
        }
    }
    (sent, now)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pacer token-bucket soundness: across arbitrary `set_rate` churn and
    /// idle gaps, a greedy sender can never move more than the integral of
    /// the configured rate over time plus one bucket of burst allowance
    /// (tokens are capped at capacity, so idle time buys at most one
    /// bucket, never a backlog).
    #[test]
    fn pacer_long_run_rate_is_bounded(
        burst in 1u32..40,
        segments in prop::collection::vec(
            // (rate Mbps, duration ms, send during this segment?)
            (1.0f64..50.0, 1u64..400, any::<bool>()),
            1..12,
        ),
    ) {
        let mut p = Pacer::new(Some(Rate::from_mbps(segments[0].0)), burst);
        let capacity = burst as u64 * MTU_BYTES;
        let mut now = SimTime::ZERO;
        let mut sent = 0u64;
        let mut budget_bytes = capacity as f64;
        for &(mbps, ms, active) in &segments {
            p.set_rate(now, Some(Rate::from_mbps(mbps)));
            let end = now + SimDuration::from_millis(ms);
            budget_bytes += mbps * 1e6 / 8.0 * (ms as f64 / 1e3);
            if active {
                let (s, t) = greedy_send(&mut p, now, end);
                sent += s;
                now = t.max(end);
            } else {
                // Idle gap: tokens accrue but are capped at capacity.
                now = end;
            }
        }
        // One extra MTU of slack for the release-epsilon.
        prop_assert!(
            (sent as f64) <= budget_bytes + MTU_BYTES as f64,
            "sent {sent} > budget {budget_bytes:.0} (burst {burst})"
        );
    }

    /// BbrLite's bandwidth estimate converges to within 15% of the path
    /// capacity and stays there across app-limited trickle gaps (the gaps
    /// must neither drag the estimate down nor ratchet it up).
    #[test]
    fn bbr_converges_despite_app_limited_gaps(
        capacity in 5.0f64..80.0,
        rtt_ms in 5u64..40,
        gaps in 1usize..6,
    ) {
        let mut cc = BbrLite::new();
        let mut now = ack_epochs(&mut cc, SimTime::ZERO, capacity, rtt_ms, 25);
        for _ in 0..gaps {
            cc.on_app_limited(now);
            now = ack_epochs(&mut cc, now, 0.5, rtt_ms, 1);
            cc.on_app_limited(now);
            now = ack_epochs(&mut cc, now, capacity, rtt_ms, 3);
        }
        let bw = cc.btlbw_bps() / 1e6;
        prop_assert!(
            (bw - capacity).abs() / capacity < 0.15,
            "btlbw {bw:.2} Mbps vs capacity {capacity:.2} Mbps"
        );
    }

    /// Idle restarts never ratchet the bandwidth estimate upward, no
    /// matter how many occur or how long the gaps are.
    #[test]
    fn bbr_idle_restarts_never_ratchet(
        capacity in 5.0f64..80.0,
        rtt_ms in 5u64..40,
        restarts in 2usize..12,
        gap_ms in 100u64..3000,
    ) {
        let mut cc = BbrLite::new();
        let mut now = ack_epochs(&mut cc, SimTime::ZERO, capacity, rtt_ms, 25);
        let before = cc.btlbw_bps();
        for _ in 0..restarts {
            cc.on_idle_restart(now);
            now += SimDuration::from_millis(gap_ms);
            now = ack_epochs(&mut cc, now, capacity, rtt_ms, 3);
        }
        let after = cc.btlbw_bps();
        prop_assert!(
            after <= before * 1.05,
            "idle restarts ratcheted btlbw {:.2} -> {:.2} Mbps",
            before / 1e6,
            after / 1e6
        );
    }
}

/// Feed `epochs` RTT-length ACK epochs at `capacity_mbps` into `cc`,
/// starting at `start`; returns the time after the last ACK.
fn ack_epochs(
    cc: &mut BbrLite,
    start: SimTime,
    capacity_mbps: f64,
    rtt_ms: u64,
    epochs: usize,
) -> SimTime {
    let rtt = SimDuration::from_millis(rtt_ms);
    let bytes_per_epoch = (capacity_mbps * 1e6 / 8.0 * rtt.as_secs_f64()) as u64;
    let mut now = start;
    for _ in 0..epochs {
        cc.on_ack(now, bytes_per_epoch / 2, Some(rtt), false);
        now += rtt / 2;
        cc.on_ack(now, bytes_per_epoch / 2, Some(rtt), false);
        now += rtt / 2;
    }
    now
}
