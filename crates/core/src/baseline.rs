//! Baseline smoothers the paper compares against.
//!
//! [`NaivePacedAbr`] is the §5.5 baseline: "just pick a pace rate a bit
//! higher than the maximum bitrate and call it a day" — a constant
//! multiplier applied to *every* chunk, including the initial phase, with
//! no other changes to the ABR. In the paper's production A/B test this
//! reduced chunk throughput by 53% but degraded play delay by 6% and VMAF
//! by 0.2%, tripping the automatic safety stop.
//!
//! [`SmoothingMechanism`] enumerates the Table 1 mechanism ablations:
//! pacing with a small burst, pacing with a large burst (≈ a congestion-
//! window cap, as in Trickle), and a token bucket. In the packet simulator
//! these map onto pacer burst sizes; the enum lets experiments sweep them
//! uniformly (§5.6 shows smaller bursts improve retransmissions with no
//! QoE difference).

use video::{Abr, AbrContext, AbrDecision, ChunkMeasurement};

/// A constant pace multiplier applied to all chunks, all phases.
pub struct NaivePacedAbr<P: Abr> {
    inner: P,
    multiplier: f64,
    /// Apply pacing during the initial phase too (the §5.5 baseline does;
    /// set false for an ablation between the baseline and Sammy).
    pace_initial: bool,
}

impl<P: Abr> NaivePacedAbr<P> {
    /// Pace every chunk at `multiplier ×` the ladder's top bitrate.
    ///
    /// # Panics
    /// Panics on a non-positive multiplier.
    pub fn new(inner: P, multiplier: f64) -> Self {
        assert!(multiplier > 0.0, "multiplier must be positive");
        NaivePacedAbr {
            inner,
            multiplier,
            pace_initial: true,
        }
    }

    /// Leave the initial phase unpaced (partial ablation).
    pub fn without_initial_pacing(mut self) -> Self {
        self.pace_initial = false;
        self
    }
}

impl<P: Abr> Abr for NaivePacedAbr<P> {
    fn select(&mut self, ctx: &AbrContext<'_>) -> AbrDecision {
        let mut d = self.inner.select(ctx);
        let pace_this = match ctx.phase {
            video::PlayerPhase::Initial => self.pace_initial,
            video::PlayerPhase::Playing => true,
        };
        if pace_this {
            d.pace = Some(ctx.ladder.top_bitrate() * self.multiplier);
        }
        d
    }

    fn on_chunk_downloaded(&mut self, m: &ChunkMeasurement) {
        self.inner.on_chunk_downloaded(m);
    }

    fn name(&self) -> &'static str {
        "naive-paced"
    }
}

/// Mechanisms for limiting server throughput (Table 1), expressed as the
/// burst profile they induce at the packet level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmoothingMechanism {
    /// TCP pacing with a small burst (Sammy's choice; §5.6 uses 4 packets).
    PacingSmallBurst,
    /// TCP pacing with the stack's default 40-packet burst cap.
    PacingDefaultBurst,
    /// A congestion-window cap (Trickle [25]): rate-limits per RTT, so
    /// bursts are up to a full window — modeled as a large burst allowance.
    CwndCap,
    /// A server-side token bucket ([3]): line-rate bursts up to the bucket
    /// depth.
    TokenBucket {
        /// Bucket depth in packets.
        depth_packets: u32,
    },
}

impl SmoothingMechanism {
    /// The pacer burst size (packets) this mechanism corresponds to in the
    /// packet simulator.
    pub fn burst_packets(self) -> u32 {
        match self {
            SmoothingMechanism::PacingSmallBurst => 4,
            SmoothingMechanism::PacingDefaultBurst => 40,
            // A cwnd cap releases up to a window at line rate each RTT;
            // with the windows in our experiments that is ≈ 40+ packets.
            SmoothingMechanism::CwndCap => 40,
            SmoothingMechanism::TokenBucket { depth_packets } => depth_packets,
        }
    }

    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SmoothingMechanism::PacingSmallBurst => "pacing(burst=4)",
            SmoothingMechanism::PacingDefaultBurst => "pacing(burst=40)",
            SmoothingMechanism::CwndCap => "cwnd-cap",
            SmoothingMechanism::TokenBucket { .. } => "token-bucket",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr::Mpc;
    use netsim::{SimDuration, SimTime};
    use video::{Ladder, PlayerPhase, ThroughputHistory, Title, TitleConfig, VmafModel};

    fn title() -> Title {
        Title::generate(
            Ladder::lab(&VmafModel::standard()),
            &TitleConfig {
                size_cv: 0.0,
                ..Default::default()
            },
        )
    }

    fn ctx<'a>(t: &'a Title, h: &'a ThroughputHistory, phase: PlayerPhase) -> AbrContext<'a> {
        AbrContext {
            now: SimTime::ZERO,
            phase,
            buffer: SimDuration::from_secs(10),
            max_buffer: SimDuration::from_secs(240),
            ladder: &t.ladder,
            upcoming: t.upcoming(0),
            history: h,
            last_rung: None,
        }
    }

    #[test]
    fn paces_all_phases_at_constant_multiple() {
        let t = title();
        let h = ThroughputHistory::new();
        let mut b = NaivePacedAbr::new(Mpc::default(), 4.0);
        let d_init = b.select(&ctx(&t, &h, PlayerPhase::Initial));
        let d_play = b.select(&ctx(&t, &h, PlayerPhase::Playing));
        assert!((d_init.pace.unwrap().mbps() - 4.0 * 3.3).abs() < 1e-9);
        assert!((d_play.pace.unwrap().mbps() - 4.0 * 3.3).abs() < 1e-9);
    }

    #[test]
    fn initial_pacing_can_be_disabled() {
        let t = title();
        let h = ThroughputHistory::new();
        let mut b = NaivePacedAbr::new(Mpc::default(), 4.0).without_initial_pacing();
        assert_eq!(b.select(&ctx(&t, &h, PlayerPhase::Initial)).pace, None);
        assert!(b.select(&ctx(&t, &h, PlayerPhase::Playing)).pace.is_some());
    }

    #[test]
    fn mechanism_burst_mapping() {
        assert_eq!(SmoothingMechanism::PacingSmallBurst.burst_packets(), 4);
        assert_eq!(SmoothingMechanism::PacingDefaultBurst.burst_packets(), 40);
        assert_eq!(SmoothingMechanism::CwndCap.burst_packets(), 40);
        assert_eq!(
            SmoothingMechanism::TokenBucket { depth_packets: 16 }.burst_packets(),
            16
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_multiplier_panics() {
        NaivePacedAbr::new(Mpc::default(), 0.0);
    }
}
