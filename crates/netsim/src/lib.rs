//! # netsim — a deterministic discrete-event packet network simulator
//!
//! This crate is the network substrate for the Sammy reproduction. It models
//! nodes, unidirectional links with drop-tail queues, MTU-sized packets, and
//! endpoint protocol logic driven by an event loop with exact integer-
//! nanosecond time. Runs are fully deterministic: events are ordered by
//! `(time, insertion sequence)` and there is no wall-clock or unseeded
//! randomness anywhere.
//!
//! The design follows the event-driven, no-surprises style of embedded TCP/IP
//! stacks: protocol state machines are plain structs that react to packets
//! and timers, and all I/O is explicit.
//!
//! ## Layout
//! - [`time`]: [`SimTime`] / [`SimDuration`] integer-nanosecond time.
//! - [`units`]: [`Rate`] (bits/sec) and packet-size constants.
//! - [`packet`]: [`Packet`] and the neutral [`Payload`] wire format.
//! - [`queue`]: the pluggable [`Queue`] discipline trait + drop-tail FIFO.
//! - [`aqm`]: RED and CoDel active queue management.
//! - [`fq`]: deficit-round-robin per-flow fair queuing.
//! - [`shaper`]: token-bucket ISP rate shaping (non-work-conserving).
//! - [`link`]: serialization + propagation delay model.
//! - [`engine`]: the event loop, [`Simulator`], and the [`Endpoint`] trait.
//! - [`topology`]: dumbbell + shared CDN/ISP/access builders.
//! - [`monitor`]: periodic queue-depth sampling for the Fig 7 traces.
//! - [`trace`]: throughput/gauge recorders for the figures.
//!
//! ## Example
//! ```
//! use netsim::prelude::*;
//!
//! let mut sim = Simulator::new();
//! let db = Dumbbell::build(&mut sim, DumbbellConfig::default());
//! let pkt = Packet::new(db.left[0], db.right[0], FlowId(1), Payload::Datagram { seq: 0 })
//!     .with_size(1500);
//! sim.inject(db.left[0], pkt);
//! sim.run_to_completion();
//! assert_eq!(sim.flow_stats(FlowId(1)).delivered_packets, 1);
//! ```

#![warn(missing_docs)]

pub mod aqm;
pub mod engine;
pub mod error;
pub mod fq;
pub mod invariants;
pub mod link;
pub mod monitor;
pub mod packet;
pub mod queue;
pub mod shaper;
pub mod time;
mod timerwheel;
pub mod topology;
pub mod trace;
pub mod units;

pub use aqm::{CoDelConfig, CoDelQueue, RedConfig, RedQueue};
pub use engine::{BudgetExceeded, Endpoint, FlowStats, NodeCtx, Simulator};
pub use error::SimError;
pub use fq::{DrrConfig, DrrQueue};
pub use link::{Link, LinkConfig, TxStart};
pub use monitor::QueueMonitor;
pub use packet::{FlowId, LinkId, NodeId, Packet, PacketId, PacketRef, PacketStore, Payload};
pub use queue::{Dequeue, Discipline, DropTailQueue, EnqueueResult, Queue, QueueStats, TrainStop};
pub use shaper::{TokenBucketConfig, TokenBucketQueue};
pub use time::{SimDuration, SimTime};
pub use topology::{Dumbbell, DumbbellConfig, SharedTopology, SharedTopologyConfig};
pub use trace::{BinnedThroughput, GaugeSeries};
pub use units::{Rate, HEADER_BYTES, MSS_BYTES, MTU_BYTES};

/// Convenient glob import for simulator users.
pub mod prelude {
    pub use crate::engine::{Endpoint, NodeCtx, Simulator};
    pub use crate::error::SimError;
    pub use crate::link::LinkConfig;
    pub use crate::packet::{FlowId, LinkId, NodeId, Packet, PacketId, PacketRef, Payload};
    pub use crate::queue::{Discipline, Queue};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{Dumbbell, DumbbellConfig, SharedTopology, SharedTopologyConfig};
    pub use crate::trace::{BinnedThroughput, GaugeSeries};
    pub use crate::units::{Rate, HEADER_BYTES, MSS_BYTES, MTU_BYTES};
}
