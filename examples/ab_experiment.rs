//! Production-style A/B experiment: Sammy vs the production algorithm over
//! a simulated user population (the Table 2 methodology at example scale).
//!
//! ```text
//! cargo run --example ab_experiment --release
//! cargo run --example ab_experiment --release -- 500   # users per arm
//! cargo run --example ab_experiment --release -- 500 8 # ... on 8 threads
//! ```

use sammy_repro::abtest::{
    draw_population, run_experiment, throughput_by_bucket, Arm, ExperimentConfig, PopulationConfig,
    Report,
};

fn main() {
    let users_per_arm: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    // Worker threads for the sharded runner (0 = all cores). The report is
    // bit-identical for every value.
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let cfg = ExperimentConfig {
        users_per_arm,
        pre_sessions: 3,
        sessions_per_user: 3,
        seed: 2023,
        bootstrap_reps: 400,
        threads,
    };
    println!(
        "Paired A/B test: production vs Sammy(c0=3.2, c1=2.8), {} users, {} sessions/arm each\n",
        cfg.users_per_arm, cfg.sessions_per_user
    );

    let pop = draw_population(&PopulationConfig::default(), cfg.users_per_arm, cfg.seed);
    let (control, treatment) =
        run_experiment(&pop, Arm::Production, Arm::Sammy { c0: 3.2, c1: 2.8 }, &cfg);

    let report = Report::build(&control, &treatment, cfg.bootstrap_reps, cfg.seed);
    println!("{}", report.render());

    println!("Chunk-throughput change by pre-experiment throughput bucket (Fig 3):");
    for (bucket, pc) in throughput_by_bucket(&control, &treatment, cfg.bootstrap_reps, cfg.seed) {
        println!(
            "  {:>12}: {:>7.1}%  [{:.1}, {:.1}]",
            sammy_repro::abtest::bucket_label(bucket),
            pc.pct_change,
            pc.ci_low,
            pc.ci_high
        );
    }
    println!("\nPaper reference (Table 2): tput -61%, retx -35.5%, RTT -13.7%,");
    println!("initial VMAF +0.14%, VMAF +0.04%, play delay -1.29%, rebuffers n.s.");
}
