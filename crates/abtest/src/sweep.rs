//! The parameter sweep behind Fig 5: the tradeoff between video quality
//! (VMAF) and chunk throughput across `(c0, c1)` settings.
//!
//! The paper used a Bayesian optimizer (Ax) over ~20 treatment arms across
//! several rounds of A/B tests; the published artifact is the tradeoff
//! curve itself, which a deterministic sweep reproduces.

use crate::experiment::{Arm, Experiment, ExperimentConfig};
use crate::population::UserProfile;
use netsim::SimError;
use serde::{Deserialize, Serialize};

/// One sweep point: a Sammy parameter setting and its measured changes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Pace multiplier at empty buffer.
    pub c0: f64,
    /// Pace multiplier at full buffer.
    pub c1: f64,
    /// Percent change in median chunk throughput vs control.
    pub tput_pct: f64,
    /// Percent change in median VMAF vs control.
    pub vmaf_pct: f64,
    /// Percent change in median play delay vs control.
    pub play_delay_pct: f64,
    /// Percent change in rebuffer rate (per hour) vs control.
    pub rebuffer_pct: f64,
}

/// The default grid of `(c0, c1)` arms, spanning aggressive (1.2x) to
/// conservative (6x) pacing — about twenty arms, like the paper's tests.
pub fn default_grid() -> Vec<(f64, f64)> {
    let mut grid = Vec::new();
    // Below ~1x the top bitrate the buffer cannot grow and quality must
    // fall — the knee at the aggressive end of the paper's Fig 5.
    grid.push((0.8, 0.8));
    grid.push((1.0, 0.7));
    for &c0 in &[1.2, 1.6, 2.0, 2.4, 2.8, 3.2, 4.0, 5.0, 6.0] {
        for &c1 in &[c0 - 0.4, c0] {
            if c1 > 0.0 {
                grid.push((c0, c1));
            }
        }
    }
    grid.push((3.2, 2.8)); // the production point
    grid
}

/// Run the sweep: one experiment per `(c0, c1)` against a shared control.
///
/// Rejects an empty population, an empty grid, or non-positive multipliers
/// before any simulation runs.
pub fn run_sweep(
    population: &[UserProfile],
    grid: &[(f64, f64)],
    cfg: &ExperimentConfig,
) -> Result<Vec<SweepPoint>, SimError> {
    cfg.validate()?;
    if population.is_empty() {
        return Err(SimError::InvalidConfig {
            field: "population",
            reason: "sweep needs at least one user".into(),
        });
    }
    if grid.is_empty() {
        return Err(SimError::InvalidConfig {
            field: "grid",
            reason: "sweep needs at least one (c0, c1) arm".into(),
        });
    }
    if let Some(&(c0, c1)) = grid.iter().find(|(c0, c1)| *c0 <= 0.0 || *c1 <= 0.0) {
        return Err(SimError::InvalidConfig {
            field: "grid",
            reason: format!("pace multipliers must be positive, got ({c0}, {c1})"),
        });
    }
    grid.iter()
        .map(|&(c0, c1)| {
            let run = Experiment::builder()
                .population(population)
                .control(Arm::Production)
                .treatment(Arm::Sammy { c0, c1 })
                .config(cfg.clone())
                .run()?;
            let report = run.report(cfg.bootstrap_reps, cfg.seed);
            let get = |name: &str| {
                report
                    .row(name)
                    .map(|r| r.change.pct_change)
                    .unwrap_or(f64::NAN)
            };
            Ok(SweepPoint {
                c0,
                c1,
                tput_pct: get("Chunk Throughput"),
                vmaf_pct: get("VMAF"),
                play_delay_pct: get("Play Delay"),
                rebuffer_pct: get("Rebuffers (/ hr)"),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{draw_population, PopulationConfig};

    #[test]
    fn grid_has_about_twenty_arms() {
        let g = default_grid();
        assert!(g.len() >= 15 && g.len() <= 25, "grid size {}", g.len());
        assert!(g.contains(&(0.8, 0.8)));
        assert!(g.contains(&(3.2, 2.8)));
        assert!(g.iter().all(|&(c0, c1)| c0 > 0.0 && c1 > 0.0));
    }

    #[test]
    fn lower_multipliers_reduce_throughput_more() {
        let cfg = ExperimentConfig {
            users_per_arm: 25,
            pre_sessions: 2,
            sessions_per_user: 2,
            seed: 4,
            bootstrap_reps: 100,
            threads: 0,
        };
        let pop = draw_population(&PopulationConfig::default(), 50, 4);
        let pts = run_sweep(&pop, &[(1.6, 1.2), (5.0, 5.0)], &cfg).unwrap();
        assert!(
            pts[0].tput_pct < pts[1].tput_pct,
            "aggressive pacing must cut throughput more: {pts:?}"
        );
    }

    #[test]
    fn sweep_rejects_bad_setups() {
        let cfg = ExperimentConfig::default();
        let pop = draw_population(&PopulationConfig::default(), 3, 4);
        assert!(run_sweep(&[], &[(3.2, 2.8)], &cfg).is_err());
        assert!(run_sweep(&pop, &[], &cfg).is_err());
        assert!(run_sweep(&pop, &[(0.0, 2.8)], &cfg).is_err());
        assert!(run_sweep(&pop, &[(3.2, -1.0)], &cfg).is_err());
        let bad = ExperimentConfig {
            users_per_arm: 0,
            ..cfg
        };
        assert!(run_sweep(&pop, &[(3.2, 2.8)], &bad).is_err());
    }
}
