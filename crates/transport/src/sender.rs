//! The TCP sender state machine.
//!
//! [`TcpSender`] sends a byte stream split into application *transfers*
//! (video chunks, HTTP responses). It implements:
//!
//! - sliding-window transmission limited by the congestion window,
//! - NewReno loss recovery: duplicate-ACK fast retransmit, partial-ACK
//!   retransmission during recovery, RTO with exponential backoff,
//! - pacing via [`Pacer`] — the application-informed pacing mechanism:
//!   each transfer carries an optional pace rate that upper-bounds the
//!   release rate of its bytes (§3.2 of the paper),
//! - slow-start restart after idle periods,
//! - telemetry: retransmitted bytes, total bytes, per-packet RTT samples
//!   recorded in a t-digest, per-transfer timings (for chunk throughput).
//!
//! The sender is not itself a [`netsim::Endpoint`]; host endpoints own one
//! or more senders and forward ACKs/timers to them (see
//! [`crate::endpoint::SenderEndpoint`] for a ready-made wrapper).

use crate::cc::{CcAlgorithm, CongestionControl};
use crate::mux::Protocol;
use crate::pacing::Pacer;
use crate::rtt::RttEstimator;
use netsim::{FlowId, NodeId, Packet, Payload, Rate, SimDuration, SimTime, MSS_BYTES};
use std::collections::VecDeque;
use tdigest::TDigest;

/// Configuration for a transport sender (TCP or QUIC — the name predates
/// the QUIC-style transport; every field applies to both).
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Wire protocol: TCP byte stream or QUIC-style streams.
    pub transport: Protocol,
    /// Congestion-control algorithm.
    pub cc: CcAlgorithm,
    /// Maximum line-rate burst in packets (applies even when unpaced; the
    /// production default in the paper is 40).
    pub max_burst_packets: u32,
    /// Restart from the initial window after an idle period longer than one
    /// RTO (slow-start restart), as production stacks do.
    pub idle_restart: bool,
    /// Maximum segment lifetime of the flow's send buffer in bytes — how
    /// far ahead of `snd_una` the application may queue. Effectively the
    /// socket send-buffer size.
    pub send_buffer: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            transport: Protocol::Tcp,
            cc: CcAlgorithm::Reno,
            max_burst_packets: 40,
            idle_restart: true,
            send_buffer: 64 * 1024 * 1024,
        }
    }
}

/// A queued or in-progress application transfer (one chunk / response).
#[derive(Debug, Clone)]
struct Transfer {
    id: u64,
    /// Byte range [start, end) within the connection's stream.
    start: u64,
    end: u64,
    /// Pace-rate limit for this transfer (application-informed pacing).
    pace: Option<Rate>,
    /// When the transfer was queued.
    queued_at: SimTime,
    /// When its first byte entered the network.
    started_at: Option<SimTime>,
}

/// A completed transfer report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedTransfer {
    /// Application-assigned transfer id.
    pub id: u64,
    /// Payload bytes transferred.
    pub bytes: u64,
    /// When the transfer was queued by the application.
    pub queued_at: SimTime,
    /// When the first byte was sent.
    pub started_at: SimTime,
    /// When the last byte was cumulatively acknowledged.
    pub completed_at: SimTime,
}

impl CompletedTransfer {
    /// Goodput of this transfer in bits/sec, measured from first send to
    /// completion — the paper's "chunk throughput".
    pub fn throughput(&self) -> Rate {
        let dur = self.completed_at.saturating_since(self.started_at);
        if dur.is_zero() {
            return Rate::ZERO;
        }
        Rate::from_bps(self.bytes as f64 * 8.0 / dur.as_secs_f64())
    }
}

/// Telemetry counters exposed by the sender.
#[derive(Debug, Clone, Default)]
pub struct SenderStats {
    /// Payload bytes sent, including retransmissions.
    pub bytes_sent: u64,
    /// Payload bytes retransmitted.
    pub retx_bytes: u64,
    /// Data packets sent, including retransmissions.
    pub packets_sent: u64,
    /// Data packets retransmitted.
    pub retx_packets: u64,
    /// Fast-retransmit loss events.
    pub loss_events: u64,
    /// Retransmission timeouts.
    pub rtos: u64,
}

impl SenderStats {
    /// Fraction of sent bytes that were retransmissions — the paper's
    /// "% retransmits" congestion metric (§5.1).
    pub fn retransmit_fraction(&self) -> f64 {
        if self.bytes_sent == 0 {
            0.0
        } else {
            self.retx_bytes as f64 / self.bytes_sent as f64
        }
    }
}

/// NewReno TCP sender with application-informed pacing.
#[derive(Debug)]
pub struct TcpSender {
    src: NodeId,
    dst: NodeId,
    flow: FlowId,
    cfg: TcpConfig,

    cc: Box<dyn CongestionControl>,
    pacer: Pacer,
    rtt: RttEstimator,

    /// Lowest unacknowledged byte.
    snd_una: u64,
    /// Next new byte to send.
    snd_nxt: u64,
    /// Application bytes available to send (stream length so far).
    stream_end: u64,

    /// Duplicate-ACK counter.
    dup_acks: u32,
    /// If in fast recovery, recovery ends when `snd_una >= recover`.
    recover: Option<u64>,
    /// Next byte to (re)send inside the recovery hole, if any.
    retx_next: Option<u64>,

    /// RTO deadline, if data is in flight.
    rto_deadline: Option<SimTime>,
    /// Consecutive RTO backoff exponent.
    rto_backoff: u32,
    /// Send epoch: bumped on RTO so stale ACK info can be recognized.
    round: u64,

    /// Last time any segment was sent (for idle restart).
    last_send: Option<SimTime>,

    transfers: VecDeque<Transfer>,
    completed: Vec<CompletedTransfer>,
    next_transfer_id: u64,

    /// Telemetry.
    stats: SenderStats,
    rtt_digest: TDigest,
}

impl TcpSender {
    /// Create a sender for a flow from `src` to `dst`.
    pub fn new(src: NodeId, dst: NodeId, flow: FlowId, cfg: TcpConfig) -> Self {
        let pacer = Pacer::unlimited(cfg.max_burst_packets);
        let cc = cfg.cc.build();
        TcpSender {
            src,
            dst,
            flow,
            cfg,
            cc,
            pacer,
            rtt: RttEstimator::new(),
            snd_una: 0,
            snd_nxt: 0,
            stream_end: 0,
            dup_acks: 0,
            recover: None,
            retx_next: None,
            rto_deadline: None,
            rto_backoff: 0,
            round: 0,
            last_send: None,
            transfers: VecDeque::new(),
            completed: Vec::new(),
            next_transfer_id: 0,
            stats: SenderStats::default(),
            rtt_digest: TDigest::new(100.0),
        }
    }

    /// The flow id this sender transmits on.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Queue an application transfer of `bytes`, paced at `pace` (or
    /// unpaced if `None`). Returns the transfer id.
    ///
    /// The pace rate applies from the moment this transfer's first byte is
    /// released; queuing a transfer with a different rate changes the pacer
    /// when the stream reaches it.
    pub fn start_transfer(&mut self, now: SimTime, bytes: u64, pace: Option<Rate>) -> u64 {
        assert!(bytes > 0, "empty transfer");
        debug_assert!(
            self.stream_end - self.snd_una + bytes <= self.cfg.send_buffer,
            "send buffer overflow"
        );
        let id = self.next_transfer_id;
        self.next_transfer_id += 1;
        let start = self.stream_end;
        self.stream_end += bytes;
        self.transfers.push_back(Transfer {
            id,
            start,
            end: self.stream_end,
            pace,
            queued_at: now,
            started_at: None,
        });
        id
    }

    /// Change the pace rate of a queued or active transfer. Applies
    /// immediately if the transfer is currently transmitting.
    pub fn set_transfer_pace(&mut self, now: SimTime, id: u64, pace: Option<Rate>) {
        let mut is_active = false;
        let snd_nxt = self.snd_nxt;
        if let Some(t) = self.transfers.iter_mut().find(|t| t.id == id) {
            t.pace = pace;
            is_active = t.start <= snd_nxt && snd_nxt < t.end;
        }
        if is_active {
            self.pacer.set_rate(now, pace);
        }
    }

    /// Drain completed-transfer reports accumulated since the last call.
    pub fn take_completed(&mut self) -> Vec<CompletedTransfer> {
        std::mem::take(&mut self.completed)
    }

    /// True when every queued byte has been acknowledged.
    pub fn is_idle(&self) -> bool {
        self.snd_una == self.stream_end
    }

    /// Bytes in flight (sent but unacknowledged).
    pub fn bytes_in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// The congestion-control algorithm's name.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// Telemetry counters.
    pub fn stats(&self) -> &SenderStats {
        &self.stats
    }

    /// Per-packet RTT samples (t-digest), as recorded by this connection.
    pub fn rtt_digest(&self) -> &TDigest {
        &self.rtt_digest
    }

    /// Smoothed RTT estimate.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    /// When the sender next needs a timer callback ([`TcpSender::on_tick`]):
    /// the earlier of the RTO deadline and the pacer release time (when the
    /// window has room but pacing blocks). `None` if nothing is pending.
    pub fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime> {
        let mut wake = self.rto_deadline;
        if self.can_send_more() {
            let seg = self.next_segment_len();
            if let Some(t) = self.pacer.next_release(now, seg + netsim::HEADER_BYTES) {
                wake = Some(wake.map_or(t, |w| w.min(t)));
            }
        }
        wake
    }

    /// Handle an arriving cumulative ACK. Newly permitted segments are
    /// pushed into `out`.
    pub fn on_ack(
        &mut self,
        now: SimTime,
        cum_ack: u64,
        echo_ts: SimTime,
        _round: u64,
        out: &mut Vec<Packet>,
    ) {
        if cum_ack > self.snd_una {
            // New data acknowledged.
            let newly_acked = cum_ack - self.snd_una;
            self.snd_una = cum_ack;
            // After an RTO's go-back-N reset, a late ACK for data sent
            // before the reset can move snd_una past snd_nxt; restore the
            // invariant snd_nxt >= snd_una or in-flight accounting
            // underflows and the connection wedges.
            if self.snd_nxt < self.snd_una {
                self.snd_nxt = self.snd_una;
            }
            self.dup_acks = 0;
            self.rto_backoff = 0;

            // RTT sample from the echoed timestamp (timestamp option
            // semantics: valid even for retransmissions).
            let rtt = now.checked_since(echo_ts);
            if let Some(r) = rtt {
                self.rtt.on_sample(r);
                self.rtt_digest.add(r.as_millis_f64());
                obs::observe!(
                    "transport.srtt_ms",
                    self.rtt.srtt().unwrap_or(r).as_millis_f64()
                );
                obs::gauge!("transport.cwnd_bytes", self.cc.cwnd() as f64);
            }

            let mut in_recovery = self.recover.is_some();
            if let Some(recover) = self.recover {
                if cum_ack >= recover {
                    // Full ACK: leave recovery.
                    self.recover = None;
                    self.retx_next = None;
                    in_recovery = false;
                } else {
                    // Partial ACK: retransmit the next hole (NewReno).
                    self.retx_next = Some(cum_ack);
                }
            }
            self.cc.on_ack(now, newly_acked, rtt, in_recovery);
            self.cc.on_inflight(now, self.bytes_in_flight());

            self.complete_transfers(now);

            if self.snd_una == self.snd_nxt {
                self.rto_deadline = None;
            } else {
                self.arm_rto(now);
            }
        } else if cum_ack == self.snd_una && self.snd_nxt > self.snd_una {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && self.recover.is_none() {
                // Fast retransmit: enter recovery.
                self.stats.loss_events += 1;
                self.cc.on_loss_event(now);
                obs::counter!("transport.loss_events", 1);
                obs::trace_event!(TcpLossEvent, now.as_nanos(), self.cc.cwnd(), 0);
                self.recover = Some(self.snd_nxt);
                self.retx_next = Some(self.snd_una);
                self.arm_rto(now);
            }
        }
        self.pump(now, out);
    }

    /// Timer callback: handles RTO expiry and pacing-released transmission.
    pub fn on_tick(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        if let Some(deadline) = self.rto_deadline {
            if now >= deadline && self.snd_nxt > self.snd_una {
                // Retransmission timeout.
                self.stats.rtos += 1;
                self.cc.on_rto(now);
                obs::counter!("transport.rtos", 1);
                obs::trace_event!(TcpRto, now.as_nanos(), self.cc.cwnd(), 0);
                self.rto_backoff = (self.rto_backoff + 1).min(10);
                self.round += 1;
                self.dup_acks = 0;
                self.recover = None;
                // Go-back-N from the hole.
                self.snd_nxt = self.snd_una;
                self.retx_next = None;
                self.arm_rto(now);
            }
        }
        self.pump(now, out);
    }

    /// Kick transmission without an ACK or timer (e.g. right after the
    /// application queues a transfer).
    pub fn pump(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        // Slow-start restart after idle.
        if self.cfg.idle_restart {
            if let Some(last) = self.last_send {
                if self.snd_una == self.snd_nxt
                    && now.saturating_since(last) > self.rtt.rto()
                    && self.snd_nxt < self.stream_end
                {
                    self.cc.on_idle_restart(now);
                }
            }
        }

        loop {
            // Priority 1: recovery retransmissions.
            if let (Some(next), Some(recover)) = (self.retx_next, self.recover) {
                if next < recover {
                    let len = self.segment_len_at(next, recover);
                    let wire = len + netsim::HEADER_BYTES;
                    if !self.pacer.can_send(now, wire) {
                        break;
                    }
                    self.emit_segment(now, next, len, true, out);
                    self.retx_next = None; // one hole per partial ACK / entry
                    continue;
                }
                self.retx_next = None;
            }

            // Priority 2: new data within cwnd.
            if !self.can_send_more() {
                // Out of data (not window): the path is app-limited, so
                // delivery-rate samples must not be taken at face value.
                if self.snd_nxt == self.stream_end && self.bytes_in_flight() < self.cc.cwnd() {
                    self.cc.on_app_limited(now);
                }
                break;
            }
            let len = self.next_segment_len();
            let wire = len + netsim::HEADER_BYTES;
            if !self.pacer.can_send(now, wire) {
                break;
            }
            self.sync_pacer_rate(now);
            // Re-check after a possible rate change.
            if !self.pacer.can_send(now, wire) {
                break;
            }
            let offset = self.snd_nxt;
            self.emit_segment(now, offset, len, false, out);
            self.snd_nxt += len;
            if self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
        }
        self.check_invariants();
    }

    /// Sender sanity (validate feature): sequence-space ordering, in-flight
    /// bounded by the send buffer, cwnd never below one MSS, and the pace
    /// (when set) finite, positive, and under a 1 Tbps sanity cap. Checked
    /// at the end of [`pump`](Self::pump), which every ACK/timer/app path
    /// funnels through.
    #[cfg(feature = "validate")]
    fn check_invariants(&self) {
        netsim::invariant!(
            "tcp-sender-sanity",
            self.snd_una <= self.snd_nxt && self.snd_nxt <= self.stream_end,
            "sequence space out of order: una {} nxt {} end {}",
            self.snd_una,
            self.snd_nxt,
            self.stream_end
        );
        netsim::invariant!(
            "tcp-sender-sanity",
            self.bytes_in_flight() <= self.cfg.send_buffer,
            "inflight {} exceeds send buffer {}",
            self.bytes_in_flight(),
            self.cfg.send_buffer
        );
        netsim::invariant!(
            "tcp-sender-sanity",
            self.cc.cwnd() >= MSS_BYTES,
            "cwnd {} below one MSS",
            self.cc.cwnd()
        );
        if let Some(rate) = self.pacer.rate() {
            netsim::invariant!(
                "pacing-rate-bounds",
                rate.bps().is_finite() && rate.bps() > 0.0 && rate.bps() <= 1e12,
                "pace {} bps outside (0, 1e12]",
                rate.bps()
            );
        }
    }

    #[cfg(not(feature = "validate"))]
    #[inline(always)]
    fn check_invariants(&self) {}

    /// Can a new (non-retransmitted) segment be sent under cwnd and data
    /// availability?
    fn can_send_more(&self) -> bool {
        self.snd_nxt < self.stream_end && self.bytes_in_flight() < self.cc.cwnd()
    }

    fn next_segment_len(&self) -> u64 {
        let remaining_data = self.stream_end - self.snd_nxt;
        let window_room = self.cc.cwnd().saturating_sub(self.bytes_in_flight());
        // Always allow at least one full segment of window room once we are
        // permitted to send at all; sub-MSS nibbles would stall recovery.
        let cap = window_room.max(MSS_BYTES);
        MSS_BYTES.min(remaining_data).min(cap)
    }

    fn segment_len_at(&self, offset: u64, limit: u64) -> u64 {
        MSS_BYTES.min(limit - offset)
    }

    fn emit_segment(
        &mut self,
        now: SimTime,
        offset: u64,
        len: u64,
        retx: bool,
        out: &mut Vec<Packet>,
    ) {
        debug_assert!(len > 0);
        let pkt = Packet::new(
            self.src,
            self.dst,
            self.flow,
            Payload::Data {
                offset,
                len: len as u32,
                retx,
                round: self.round,
            },
        );
        self.pacer.on_send(now, pkt.size);
        self.stats.bytes_sent += len;
        self.stats.packets_sent += 1;
        if retx {
            self.stats.retx_bytes += len;
            self.stats.retx_packets += 1;
            obs::counter!("transport.retx_packets", 1);
        }
        self.note_transfer_start(now, offset);
        self.last_send = Some(now);
        out.push(pkt);
    }

    /// Update the pacer to the effective pace rate at `snd_nxt`: the
    /// minimum of the active transfer's application-informed rate and any
    /// rate the congestion controller itself requests (BBR-style).
    fn sync_pacer_rate(&mut self, now: SimTime) {
        let nxt = self.snd_nxt;
        let app = self
            .transfers
            .iter()
            .find(|t| t.start <= nxt && nxt < t.end)
            .and_then(|t| t.pace);
        let cc = self.cc.pacing_rate();
        let rate = match (app, cc) {
            (Some(a), Some(c)) => Some(a.min(c)),
            (Some(a), None) => Some(a),
            (None, Some(c)) => Some(c),
            (None, None) => None,
        };
        if self.pacer.rate().map(|r| r.bps()) != rate.map(|r| r.bps()) {
            // `_new`: referenced only from the obs expansion.
            if let Some(_new) = rate {
                obs::observe!("transport.pacing_rate_mbps", _new.bps() / 1e6);
            }
            self.pacer.set_rate(now, rate);
        }
    }

    fn note_transfer_start(&mut self, now: SimTime, offset: u64) {
        for t in self.transfers.iter_mut() {
            if t.start <= offset && offset < t.end && t.started_at.is_none() {
                t.started_at = Some(now);
            }
        }
    }

    fn complete_transfers(&mut self, now: SimTime) {
        while let Some(front) = self.transfers.front() {
            if self.snd_una >= front.end {
                let t = self.transfers.pop_front().expect("checked front");
                self.completed.push(CompletedTransfer {
                    id: t.id,
                    bytes: t.end - t.start,
                    queued_at: t.queued_at,
                    started_at: t.started_at.unwrap_or(t.queued_at),
                    completed_at: now,
                });
            } else {
                break;
            }
        }
    }

    fn arm_rto(&mut self, now: SimTime) {
        let rto = self.rtt.rto().saturating_mul(1 << self.rto_backoff);
        self.rto_deadline = Some(now + rto);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::HEADER_BYTES;

    fn sender() -> TcpSender {
        TcpSender::new(NodeId(0), NodeId(1), FlowId(1), TcpConfig::default())
    }

    fn data_range(pkt: &Packet) -> (u64, u64, bool) {
        match pkt.payload {
            Payload::Data {
                offset, len, retx, ..
            } => (offset, offset + len as u64, retx),
            _ => panic!("not a data packet"),
        }
    }

    /// A non-physical pace must trip `pacing-rate-bounds` (and nothing
    /// else) the first time the send path runs with it. `Rate::ZERO` gets
    /// past `Rate`'s constructor (it is a legitimate rate elsewhere) but a
    /// zero pace can never release a byte.
    #[cfg(feature = "validate")]
    #[test]
    fn zero_pace_trips_pacing_invariant() {
        let err = std::panic::catch_unwind(|| {
            let mut s = sender();
            let mut out = Vec::new();
            s.start_transfer(SimTime::ZERO, 100_000, Some(Rate::ZERO));
            s.pump(SimTime::ZERO, &mut out);
        })
        .expect_err("invalid pace must trip the invariant");
        let msg = netsim::invariants::panic_message(&*err);
        assert!(
            msg.starts_with(&netsim::invariants::violation_tag("pacing-rate-bounds")),
            "wrong invariant: {msg}"
        );
    }

    #[test]
    fn initial_window_burst() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start_transfer(SimTime::ZERO, 100_000, None);
        s.pump(SimTime::ZERO, &mut out);
        // IW = 10 segments.
        assert_eq!(out.len(), 10);
        assert_eq!(s.bytes_in_flight(), 10 * MSS_BYTES);
        let (o, e, retx) = data_range(&out[0]);
        assert_eq!((o, e, retx), (0, MSS_BYTES, false));
    }

    #[test]
    fn ack_clocking_grows_window() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start_transfer(SimTime::ZERO, 10_000_000, None);
        s.pump(SimTime::ZERO, &mut out);
        let first_burst = out.len();
        out.clear();
        // ACK everything: slow start doubles cwnd; roughly 2x packets flow.
        let t1 = SimTime::from_millis(10);
        s.on_ack(t1, s.bytes_in_flight(), SimTime::ZERO, 0, &mut out);
        assert!(
            out.len() >= first_burst,
            "slow start should open the window"
        );
        assert!(s.srtt().is_some());
    }

    #[test]
    fn transfer_completion_reported() {
        let mut s = sender();
        let mut out = Vec::new();
        let id = s.start_transfer(SimTime::ZERO, 5000, None);
        s.pump(SimTime::ZERO, &mut out);
        let sent: u64 = out
            .iter()
            .map(|p| match p.payload {
                Payload::Data { len, .. } => len as u64,
                _ => 0,
            })
            .sum();
        assert_eq!(sent, 5000);
        let t1 = SimTime::from_millis(20);
        s.on_ack(t1, 5000, SimTime::ZERO, 0, &mut Vec::new());
        let done = s.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(done[0].bytes, 5000);
        assert_eq!(done[0].completed_at, t1);
        assert!(s.is_idle());
        // Throughput: 5000 B in 20 ms = 2 Mbps.
        assert!((done[0].throughput().mbps() - 2.0).abs() < 0.01);
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start_transfer(SimTime::ZERO, 100_000, None);
        s.pump(SimTime::ZERO, &mut out);
        let w0 = s.cwnd();
        out.clear();

        // First segment lost: receiver keeps ACKing 0... wait, receiver
        // would ACK cum=0 on each out-of-order arrival. Simulate 3 dupacks.
        for _ in 0..2 {
            s.on_ack(SimTime::from_millis(5), 0, SimTime::ZERO, 0, &mut out);
            assert_eq!(s.stats().loss_events, 0);
        }
        s.on_ack(SimTime::from_millis(6), 0, SimTime::ZERO, 0, &mut out);
        assert_eq!(s.stats().loss_events, 1);
        assert!(s.cwnd() < w0);
        // The retransmission of the first segment must be in `out`.
        let retxs: Vec<_> = out.iter().filter(|p| data_range(p).2).collect();
        assert_eq!(retxs.len(), 1);
        assert_eq!(data_range(retxs[0]).0, 0);
    }

    #[test]
    fn full_ack_exits_recovery() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start_transfer(SimTime::ZERO, 50_000, None);
        s.pump(SimTime::ZERO, &mut out);
        let flight = s.bytes_in_flight();
        for _ in 0..3 {
            s.on_ack(SimTime::from_millis(5), 0, SimTime::ZERO, 0, &mut out);
        }
        assert_eq!(s.stats().loss_events, 1);
        // Receiver got the retransmission: full cumulative ACK.
        s.on_ack(SimTime::from_millis(10), flight, SimTime::ZERO, 0, &mut out);
        // Next loss event is a fresh one.
        s.pump(SimTime::from_millis(10), &mut out);
        for _ in 0..3 {
            s.on_ack(SimTime::from_millis(15), flight, SimTime::ZERO, 0, &mut out);
        }
        assert_eq!(s.stats().loss_events, 2);
    }

    #[test]
    fn rto_collapses_and_retransmits() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start_transfer(SimTime::ZERO, 100_000, None);
        s.pump(SimTime::ZERO, &mut out);
        out.clear();

        // No ACKs arrive; fire the timer past the RTO deadline.
        let deadline = s.next_wakeup(SimTime::ZERO).expect("rto armed");
        s.on_tick(deadline, &mut out);
        assert_eq!(s.stats().rtos, 1);
        assert_eq!(s.cwnd(), MSS_BYTES);
        // Go-back-N restart: first segment retransmitted.
        assert!(!out.is_empty());
        let (o, _, _) = data_range(&out[0]);
        assert_eq!(o, 0);
    }

    #[test]
    fn rto_backoff_doubles() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start_transfer(SimTime::ZERO, 10_000, None);
        s.pump(SimTime::ZERO, &mut out);

        let d1 = s.next_wakeup(SimTime::ZERO).unwrap();
        s.on_tick(d1, &mut out);
        let d2 = s.next_wakeup(d1).unwrap();
        s.on_tick(d2, &mut out);
        let d3 = s.next_wakeup(d2).unwrap();
        // Exponential backoff: interval roughly doubles.
        let i1 = d2.saturating_since(d1).as_secs_f64();
        let i2 = d3.saturating_since(d2).as_secs_f64();
        assert!(i2 > 1.5 * i1, "i1={i1} i2={i2}");
    }

    #[test]
    fn pacing_limits_release() {
        let mut s = TcpSender::new(
            NodeId(0),
            NodeId(1),
            FlowId(1),
            TcpConfig {
                max_burst_packets: 4,
                ..Default::default()
            },
        );
        let mut out = Vec::new();
        // Pace at 12 Mbps: 1500 B wire packets, 1 per ms after the burst.
        s.start_transfer(SimTime::ZERO, 1_000_000, Some(Rate::from_mbps(12.0)));
        s.pump(SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 4, "initial burst limited by burst size");

        // The pacer schedules the next release.
        let wake = s.next_wakeup(SimTime::ZERO).expect("pacer wakeup");
        assert!(wake > SimTime::ZERO);
        assert!(wake <= SimTime::from_millis(2));
        out.clear();
        s.on_tick(wake, &mut out);
        assert!(!out.is_empty());
    }

    #[test]
    fn paced_rate_is_honored_end_to_end() {
        // Drive with fixed 1 ms steps, acknowledging everything sent on each
        // step (an idealized zero-loss network). The pacer alone must limit
        // the average wire rate to the pace rate.
        let mut s = sender();
        let mut out = Vec::new();
        let pace = Rate::from_mbps(8.0);
        s.start_transfer(SimTime::ZERO, 2_000_000, Some(pace));
        let mut now = SimTime::ZERO;
        let mut wire_bytes = 0u64;
        let mut acked = 0u64;
        s.pump(now, &mut out);
        let mut finished_at = None;
        for _ in 0..10_000 {
            for p in out.drain(..) {
                if let Payload::Data { len, .. } = p.payload {
                    wire_bytes += len as u64 + HEADER_BYTES;
                }
            }
            acked += s.bytes_in_flight();
            s.on_ack(now, acked, now, 0, &mut out);
            if s.is_idle() && out.is_empty() {
                finished_at = Some(now);
                break;
            }
            now += SimDuration::from_millis(1);
            s.on_tick(now, &mut out);
        }
        let finished = finished_at.expect("transfer did not finish");
        let elapsed = finished.as_secs_f64();
        assert!(
            elapsed > 0.5,
            "transfer finished suspiciously fast: {elapsed}"
        );
        let avg = wire_bytes as f64 * 8.0 / elapsed;
        assert!(
            (avg - pace.bps()).abs() / pace.bps() < 0.1,
            "avg={avg} pace={}",
            pace.bps()
        );
    }

    #[test]
    fn per_transfer_pace_rates_switch() {
        let mut s = sender();
        let mut out = Vec::new();
        // First transfer larger than the initial window so the sender stays
        // inside it at t=0; second transfer at a different rate.
        s.start_transfer(SimTime::ZERO, 20 * MSS_BYTES, Some(Rate::from_mbps(1.0)));
        s.start_transfer(SimTime::ZERO, 2 * MSS_BYTES, Some(Rate::from_mbps(100.0)));
        s.pump(SimTime::ZERO, &mut out);
        // Still inside the first transfer: pacer at 1 Mbps.
        assert_eq!(s.pacer.rate().map(|r| r.mbps()), Some(1.0));
        // ACK what's outstanding; the window opens and the stream eventually
        // crosses into the second transfer, switching the pacer.
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            now += SimDuration::from_millis(100);
            s.on_ack(now, s.snd_nxt, now, 0, &mut out);
            if s.is_idle() {
                break;
            }
            if let Some(w) = s.next_wakeup(now) {
                now = now.max(w);
                s.on_tick(now, &mut out);
            }
        }
        assert!(s.is_idle());
        assert_eq!(s.pacer.rate().map(|r| r.mbps()), Some(100.0));
        assert_eq!(s.take_completed().len(), 2);
    }

    #[test]
    fn retransmit_fraction_stat() {
        let mut st = SenderStats {
            bytes_sent: 1000,
            retx_bytes: 50,
            ..Default::default()
        };
        assert!((st.retransmit_fraction() - 0.05).abs() < 1e-12);
        st.bytes_sent = 0;
        assert_eq!(st.retransmit_fraction(), 0.0);
    }

    #[test]
    fn late_ack_after_rto_does_not_underflow_flight() {
        // Regression: RTO fires (go-back-N: snd_nxt = snd_una), then an ACK
        // for data sent before the reset arrives. Flight accounting must
        // not underflow and the transfer must still complete.
        let mut s = sender();
        let mut out = Vec::new();
        s.start_transfer(SimTime::ZERO, 100_000, None);
        s.pump(SimTime::ZERO, &mut out);
        let sent = s.snd_nxt;
        assert!(sent > 0);

        // RTO fires with everything unacked.
        let deadline = s.next_wakeup(SimTime::ZERO).unwrap();
        s.on_tick(deadline, &mut out);
        assert_eq!(s.stats().rtos, 1);

        // A late cumulative ACK for all pre-reset data arrives.
        out.clear();
        s.on_ack(
            deadline + SimDuration::from_millis(1),
            sent,
            SimTime::ZERO,
            0,
            &mut out,
        );
        assert!(
            s.bytes_in_flight() < 1 << 40,
            "flight underflowed: {}",
            s.bytes_in_flight()
        );

        // The connection keeps making progress to completion.
        let mut now = deadline + SimDuration::from_millis(1);
        let mut acked = sent;
        for _ in 0..500 {
            if s.is_idle() {
                break;
            }
            now += SimDuration::from_millis(5);
            acked += s.bytes_in_flight();
            s.on_ack(now, acked, now, 0, &mut out);
            s.on_tick(now, &mut out);
        }
        assert!(s.is_idle(), "transfer wedged after late ACK");
    }

    #[test]
    fn idle_restart_resets_cwnd() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start_transfer(SimTime::ZERO, 1_000_000, None);
        s.pump(SimTime::ZERO, &mut out);
        // Grow the window a lot.
        let mut now = SimTime::ZERO;
        for _ in 0..20 {
            now += SimDuration::from_millis(10);
            s.on_ack(
                now,
                s.snd_nxt,
                now - SimDuration::from_millis(10),
                0,
                &mut out,
            );
        }
        assert!(s.cwnd() > 20 * MSS_BYTES);
        assert!(s.is_idle());

        // Long idle, then a new transfer: window restarts at IW.
        let later = now + SimDuration::from_secs(30);
        s.start_transfer(later, 100_000, None);
        out.clear();
        s.pump(later, &mut out);
        assert_eq!(
            out.len(),
            10,
            "slow-start restart should cap the burst at IW"
        );
    }
}
