//! Common Media Client Data (CMCD) encoding of chunk requests.
//!
//! §3.2 of the paper points out that application-informed pacing is already
//! deployable on stock CDNs: CMCD (CTA-5004) defines an `rtp` ("requested
//! maximum throughput") key that Akamai maps to server-side rate limiting,
//! and Fastly exposes a socket pace control driven by a request header.
//! This module renders and parses the CMCD payload our simulated requests
//! carry, so the wire format of the pace hint matches what a real player
//! would send.
//!
//! Only the keys the reproduction uses are implemented: `br` (encoded
//! bitrate, kbps), `bl` (buffer length, ms), `d` (object duration, ms),
//! `rtp` (requested max throughput, kbps, rounded up to the nearest 100 as
//! the spec requires), and `ot` (object type, always `v` for video here).

use netsim::{Rate, SimDuration};
use serde::{Deserialize, Serialize};

/// The CMCD fields attached to a chunk request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CmcdRequest {
    /// Encoded bitrate of the requested rung.
    pub bitrate: Rate,
    /// Current playback buffer level.
    pub buffer: SimDuration,
    /// Playback duration of the requested object.
    pub duration: SimDuration,
    /// Requested maximum throughput (the application-informed pace rate),
    /// if the client asks for pacing.
    pub requested_max_throughput: Option<Rate>,
}

impl CmcdRequest {
    /// Render as a `CMCD` header value, keys sorted alphabetically as the
    /// spec requires.
    pub fn to_header(&self) -> String {
        let mut parts = vec![
            format!("bl={}", self.buffer.as_millis_f64().round() as u64),
            format!("br={}", kbps(self.bitrate)),
            format!("d={}", self.duration.as_millis_f64().round() as u64),
            "ot=v".to_string(),
        ];
        if let Some(rtp) = self.requested_max_throughput {
            // Spec: rtp is expressed in kbps rounded UP to the next 100.
            let k = kbps(rtp);
            let rounded = k.div_ceil(100) * 100;
            parts.push(format!("rtp={rounded}"));
        }
        parts.sort();
        parts.join(",")
    }

    /// Parse a header value produced by [`CmcdRequest::to_header`] (or a
    /// compatible client). Unknown keys are ignored, per the spec's
    /// forward-compatibility rule. Returns `None` if a required key (`br`,
    /// `bl`, `d`) is missing or malformed.
    pub fn from_header(header: &str) -> Option<CmcdRequest> {
        let mut br = None;
        let mut bl = None;
        let mut d = None;
        let mut rtp = None;
        for part in header.split(',') {
            let mut kv = part.trim().splitn(2, '=');
            let key = kv.next()?.trim();
            let value = kv.next().unwrap_or("");
            match key {
                "br" => br = value.parse::<u64>().ok(),
                "bl" => bl = value.parse::<u64>().ok(),
                "d" => d = value.parse::<u64>().ok(),
                "rtp" => rtp = value.parse::<u64>().ok(),
                _ => {}
            }
        }
        Some(CmcdRequest {
            bitrate: Rate::from_kbps(br? as f64),
            buffer: SimDuration::from_millis(bl?),
            duration: SimDuration::from_millis(d?),
            requested_max_throughput: rtp.map(|k| Rate::from_kbps(k as f64)),
        })
    }
}

fn kbps(r: Rate) -> u64 {
    (r.bps() / 1e3).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CmcdRequest {
        CmcdRequest {
            bitrate: Rate::from_kbps(3300.0),
            buffer: SimDuration::from_millis(42_500),
            duration: SimDuration::from_secs(4),
            requested_max_throughput: Some(Rate::from_mbps(10.56)),
        }
    }

    #[test]
    fn header_format() {
        let h = sample().to_header();
        // Keys sorted, rtp rounded up to the nearest 100 kbps.
        assert_eq!(h, "bl=42500,br=3300,d=4000,ot=v,rtp=10600");
    }

    #[test]
    fn roundtrip() {
        let r = sample();
        let back = CmcdRequest::from_header(&r.to_header()).unwrap();
        assert_eq!(back.bitrate, r.bitrate);
        assert_eq!(back.buffer, r.buffer);
        assert_eq!(back.duration, r.duration);
        // rtp went through the round-up: 10560 -> 10600 kbps.
        assert_eq!(
            back.requested_max_throughput.unwrap(),
            Rate::from_kbps(10600.0)
        );
    }

    #[test]
    fn unpaced_request_omits_rtp() {
        let r = CmcdRequest {
            requested_max_throughput: None,
            ..sample()
        };
        let h = r.to_header();
        assert!(!h.contains("rtp"));
        let back = CmcdRequest::from_header(&h).unwrap();
        assert_eq!(back.requested_max_throughput, None);
    }

    #[test]
    fn unknown_keys_ignored() {
        let h = "bl=1000,br=500,cid=\"abc\",d=4000,nor=\"next\",sid=\"xyz\"";
        let r = CmcdRequest::from_header(h).unwrap();
        assert_eq!(r.bitrate, Rate::from_kbps(500.0));
        assert_eq!(r.requested_max_throughput, None);
    }

    #[test]
    fn malformed_header_rejected() {
        assert!(CmcdRequest::from_header("").is_none());
        assert!(CmcdRequest::from_header("br=abc,bl=1,d=1").is_none());
        assert!(CmcdRequest::from_header("bl=1,d=1").is_none()); // missing br
    }

    #[test]
    fn rtp_rounding_is_exact_multiple() {
        for mbps in [0.1, 1.0, 3.3, 9.99, 10.56, 52.8] {
            let r = CmcdRequest {
                requested_max_throughput: Some(Rate::from_mbps(mbps)),
                ..sample()
            };
            let h = r.to_header();
            let rtp: u64 = h
                .split(',')
                .find(|p| p.starts_with("rtp="))
                .and_then(|p| p[4..].parse().ok())
                .unwrap();
            assert_eq!(rtp % 100, 0, "rtp {rtp} not a multiple of 100");
            assert!(rtp as f64 >= mbps * 1e3, "rtp must round up");
            assert!((rtp as f64) < mbps * 1e3 + 100.0);
        }
    }
}
