//! A BBR-style model-based congestion controller.
//!
//! §2.2 of the paper contrasts Sammy with BBR: both pace, but "BBR aims to
//! pace close to the bottleneck capacity while Sammy aims to pace
//! significantly lower." This simplified controller reproduces the parts
//! of BBR the comparison needs — a windowed-max bottleneck-bandwidth
//! estimate, a min-RTT estimate, startup/drain/probe phases, and a pacing
//! rate derived from the bandwidth model — so the ablations can show that
//! BBR smooths packet bursts without reducing *chunk* throughput.
//!
//! Simplifications vs real BBR: no PROBE_RTT phase (sessions are short and
//! app-limited, so the min-RTT filter rarely staleness-expires), loss is
//! ignored except for RTO (as in BBRv1), and delivery rate is estimated
//! from cumulative-ACK byte counts over RTT-length epochs rather than
//! per-packet delivery-rate sampling.

use crate::cc::{CongestionControl, INITIAL_CWND_SEGMENTS, MAX_CWND_BYTES};
use netsim::{Rate, SimDuration, SimTime, MSS_BYTES};
use std::collections::VecDeque;

/// Phases of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Exponential search for the bottleneck bandwidth.
    Startup,
    /// Drain the queue built during startup.
    Drain,
    /// Steady state: cycle pacing gains around 1.0.
    ProbeBw,
}

/// The PROBE_BW gain cycle (BBRv1's eight-phase cycle).
const BW_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Startup pacing gain (2/ln 2).
const STARTUP_GAIN: f64 = 2.885;

/// Simplified BBR congestion control.
#[derive(Debug, Clone)]
pub struct BbrLite {
    phase: Phase,
    /// Windowed max-filter of delivery-rate samples: (sample bps, epoch no).
    bw_samples: VecDeque<(f64, u64)>,
    /// Epoch counter for the max filter window.
    epoch: u64,
    /// Bytes cumulatively acked during the current epoch.
    epoch_bytes: u64,
    /// When the current epoch began.
    epoch_start: Option<SimTime>,
    /// Minimum RTT seen.
    min_rtt: Option<SimDuration>,
    /// Consecutive epochs without ≥25% bandwidth growth (startup exit).
    plateau: u32,
    /// Bandwidth at the last startup growth check.
    last_growth_bw: f64,
    /// Index into the PROBE_BW gain cycle.
    cycle_idx: usize,
}

impl Default for BbrLite {
    fn default() -> Self {
        Self::new()
    }
}

impl BbrLite {
    /// A fresh controller in STARTUP.
    pub fn new() -> Self {
        BbrLite {
            phase: Phase::Startup,
            bw_samples: VecDeque::new(),
            epoch: 0,
            epoch_bytes: 0,
            epoch_start: None,
            min_rtt: None,
            plateau: 0,
            last_growth_bw: 0.0,
            cycle_idx: 0,
        }
    }

    /// Current bottleneck-bandwidth estimate in bits/sec (the max filter).
    pub fn btlbw_bps(&self) -> f64 {
        self.bw_samples
            .iter()
            .map(|&(bw, _)| bw)
            .fold(0.0, f64::max)
    }

    /// Estimated bandwidth-delay product in bytes (0 before any sample,
    /// so the cwnd floor applies).
    fn bdp_bytes(&self) -> u64 {
        match self.min_rtt {
            Some(rtt) => (self.btlbw_bps() * rtt.as_secs_f64() / 8.0) as u64,
            None => 0,
        }
    }

    fn pacing_gain(&self) -> f64 {
        match self.phase {
            Phase::Startup => STARTUP_GAIN,
            Phase::Drain => 1.0 / STARTUP_GAIN,
            Phase::ProbeBw => BW_GAINS[self.cycle_idx],
        }
    }

    fn on_epoch_complete(&mut self, sample_bps: f64) {
        self.epoch += 1;
        self.bw_samples.push_back((sample_bps, self.epoch));
        // Keep a 10-epoch window.
        while let Some(&(_, e)) = self.bw_samples.front() {
            if self.epoch - e >= 10 {
                self.bw_samples.pop_front();
            } else {
                break;
            }
        }

        match self.phase {
            Phase::Startup => {
                let bw = self.btlbw_bps();
                if bw > self.last_growth_bw * 1.25 {
                    self.last_growth_bw = bw;
                    self.plateau = 0;
                } else {
                    self.plateau += 1;
                    if self.plateau >= 3 {
                        self.phase = Phase::Drain;
                    }
                }
            }
            Phase::Drain => {
                // One drain epoch is enough at our scale.
                self.phase = Phase::ProbeBw;
                self.cycle_idx = 0;
            }
            Phase::ProbeBw => {
                self.cycle_idx = (self.cycle_idx + 1) % BW_GAINS.len();
            }
        }
    }
}

impl CongestionControl for BbrLite {
    fn on_ack(
        &mut self,
        now: SimTime,
        bytes_acked: u64,
        rtt: Option<SimDuration>,
        _in_recovery: bool,
    ) {
        if let Some(r) = rtt {
            self.min_rtt = Some(match self.min_rtt {
                Some(m) if m < r => m,
                _ => r,
            });
        }
        self.epoch_bytes += bytes_acked;
        let epoch_len = self.min_rtt.unwrap_or(SimDuration::from_millis(50));
        match self.epoch_start {
            None => self.epoch_start = Some(now),
            Some(start) => {
                let elapsed = now.saturating_since(start);
                if elapsed >= epoch_len && !elapsed.is_zero() {
                    let sample = self.epoch_bytes as f64 * 8.0 / elapsed.as_secs_f64();
                    self.on_epoch_complete(sample);
                    self.epoch_bytes = 0;
                    self.epoch_start = Some(now);
                }
            }
        }
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        // BBRv1 deliberately does not back off on isolated losses; its rate
        // model already bounds the queue.
    }

    fn on_rto(&mut self, _now: SimTime) {
        // Timeout: the model is stale. Restart the search.
        self.bw_samples.clear();
        self.phase = Phase::Startup;
        self.plateau = 0;
        self.last_growth_bw = 0.0;
        self.epoch_bytes = 0;
        self.epoch_start = None;
    }

    fn on_idle_restart(&mut self, _now: SimTime) {
        // Keep the model (BBR's rate is remembered across app-limited
        // gaps), but refresh the epoch accounting.
        self.epoch_bytes = 0;
        self.epoch_start = None;
    }

    fn cwnd(&self) -> u64 {
        // 2x BDP, floored at the initial window.
        (2 * self.bdp_bytes()).clamp(INITIAL_CWND_SEGMENTS * MSS_BYTES, MAX_CWND_BYTES)
    }

    fn ssthresh(&self) -> u64 {
        u64::MAX
    }

    fn name(&self) -> &'static str {
        "bbr-lite"
    }

    fn pacing_rate(&self) -> Option<Rate> {
        let bw = self.btlbw_bps();
        if bw <= 0.0 {
            // No estimate yet: let the initial window go unpaced.
            None
        } else {
            Some(Rate::from_bps(bw * self.pacing_gain()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed ACKs simulating a path with the given capacity and RTT.
    fn drive(cc: &mut BbrLite, capacity_mbps: f64, rtt_ms: u64, epochs: usize) {
        let rtt = SimDuration::from_millis(rtt_ms);
        let bytes_per_epoch = (capacity_mbps * 1e6 / 8.0 * rtt.as_secs_f64()) as u64;
        let mut now = SimTime::ZERO;
        for _ in 0..epochs {
            // Two ACKs per epoch, half the bytes each.
            cc.on_ack(now, bytes_per_epoch / 2, Some(rtt), false);
            now += rtt / 2;
            cc.on_ack(now, bytes_per_epoch / 2, Some(rtt), false);
            now += rtt / 2;
        }
    }

    #[test]
    fn bandwidth_estimate_converges() {
        let mut cc = BbrLite::new();
        drive(&mut cc, 40.0, 20, 30);
        let bw = cc.btlbw_bps() / 1e6;
        assert!((bw - 40.0).abs() / 40.0 < 0.15, "btlbw {bw} Mbps");
    }

    #[test]
    fn startup_exits_to_probe_bw() {
        let mut cc = BbrLite::new();
        drive(&mut cc, 40.0, 20, 30);
        assert_eq!(cc.phase, Phase::ProbeBw);
    }

    #[test]
    fn pacing_rate_near_capacity_in_steady_state() {
        let mut cc = BbrLite::new();
        drive(&mut cc, 40.0, 20, 40);
        // Across the gain cycle, pacing stays within [0.75, 1.25] x btlbw.
        let pace = cc.pacing_rate().unwrap().mbps();
        let bw = cc.btlbw_bps() / 1e6;
        assert!(
            pace >= 0.7 * bw && pace <= 1.3 * bw,
            "pace {pace} vs bw {bw}"
        );
    }

    #[test]
    fn cwnd_tracks_two_bdp() {
        let mut cc = BbrLite::new();
        drive(&mut cc, 40.0, 20, 30);
        // BDP = 40 Mbps x 20 ms = 100 kB; cwnd ~ 200 kB.
        let cwnd = cc.cwnd() as f64 / 1e3;
        assert!(cwnd > 140.0 && cwnd < 280.0, "cwnd {cwnd} kB");
    }

    #[test]
    fn no_estimate_means_unpaced() {
        let cc = BbrLite::new();
        assert_eq!(cc.pacing_rate(), None);
        assert_eq!(cc.cwnd(), INITIAL_CWND_SEGMENTS * MSS_BYTES);
    }

    #[test]
    fn loss_is_ignored_rto_resets() {
        let mut cc = BbrLite::new();
        drive(&mut cc, 40.0, 20, 30);
        let bw = cc.btlbw_bps();
        cc.on_loss_event(SimTime::ZERO);
        assert_eq!(cc.btlbw_bps(), bw, "loss must not clear the model");
        cc.on_rto(SimTime::ZERO);
        assert_eq!(cc.btlbw_bps(), 0.0, "RTO must reset the model");
        assert_eq!(cc.phase, Phase::Startup);
    }
}
