//! Per-flow fair queuing: deficit round robin (DRR).
//!
//! [`DrrQueue`] isolates flows sharing a bottleneck: each [`FlowId`] gets
//! its own FIFO, and service cycles round-robin with a byte quantum so
//! flows receive (approximately) equal byte rates regardless of how
//! aggressively they send — the discipline behind the Jain-fairness
//! property tests.
//!
//! Determinism: flow slots are created in first-arrival order and the
//! active list is an explicit `VecDeque` of slot indices; the `HashMap` is
//! used only for point lookups, never iterated.

use crate::packet::{FlowId, PacketRef};
use crate::queue::{Dequeue, EnqueueResult, Queue, QueueStats};
use crate::time::SimTime;
use crate::units::MTU_BYTES;
use std::collections::{HashMap, VecDeque};

/// Configuration for [`DrrQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrrConfig {
    /// Bytes of service credit granted per round-robin visit. One MTU is
    /// the classic choice: every backlogged flow can always send at least
    /// one full-sized packet per round.
    pub quantum_bytes: u64,
}

impl Default for DrrConfig {
    fn default() -> Self {
        DrrConfig {
            quantum_bytes: MTU_BYTES,
        }
    }
}

#[derive(Debug)]
struct FlowSlot {
    queue: VecDeque<PacketRef>,
    deficit: u64,
    /// Present in the active round-robin list?
    active: bool,
    /// Received this visit's quantum already (a flow at the head of the
    /// round may be served across several `dequeue` calls)?
    charged: bool,
}

/// A deficit-round-robin fair queue over per-flow FIFOs.
#[derive(Debug)]
pub struct DrrQueue {
    capacity_bytes: u64,
    occupied_bytes: u64,
    quantum: u64,
    stats: QueueStats,
    /// Flow slots in first-arrival order (never reordered or removed).
    flows: Vec<FlowSlot>,
    /// Point lookups only — iteration order never matters.
    index: HashMap<FlowId, usize>,
    /// Round-robin list of active slot indices.
    active: VecDeque<usize>,
    len: usize,
}

impl DrrQueue {
    /// Create a DRR queue with a shared byte capacity across all flows.
    ///
    /// # Panics
    /// Panics on zero capacity or zero quantum.
    pub fn new(capacity_bytes: u64, cfg: DrrConfig) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        assert!(cfg.quantum_bytes > 0, "DRR quantum must be positive");
        DrrQueue {
            capacity_bytes,
            occupied_bytes: 0,
            quantum: cfg.quantum_bytes,
            stats: QueueStats::default(),
            flows: Vec::new(),
            index: HashMap::new(),
            active: VecDeque::new(),
            len: 0,
        }
    }

    /// Number of distinct flows ever seen.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    fn slot_of(&mut self, flow: FlowId) -> usize {
        if let Some(&i) = self.index.get(&flow) {
            return i;
        }
        let i = self.flows.len();
        self.flows.push(FlowSlot {
            queue: VecDeque::new(),
            deficit: 0,
            active: false,
            charged: false,
        });
        self.index.insert(flow, i);
        i
    }
}

impl Queue for DrrQueue {
    fn enqueue(&mut self, _now: SimTime, pkt: PacketRef) -> EnqueueResult {
        // Shared buffer: tail-drop the arriving packet on overflow no
        // matter which flow it belongs to.
        if self.occupied_bytes + pkt.size > self.capacity_bytes {
            self.stats.on_arrival_drop(pkt.size, self.occupied_bytes);
            return EnqueueResult::Dropped;
        }
        let i = self.slot_of(pkt.flow);
        self.occupied_bytes += pkt.size;
        self.len += 1;
        self.stats.on_accept(pkt.size, self.occupied_bytes);
        let slot = &mut self.flows[i];
        slot.queue.push_back(pkt);
        if !slot.active {
            slot.active = true;
            slot.deficit = 0;
            slot.charged = false;
            self.active.push_back(i);
        }
        EnqueueResult::Accepted
    }

    fn dequeue(&mut self, _now: SimTime, _dropped: &mut Vec<PacketRef>) -> Dequeue {
        loop {
            let Some(&i) = self.active.front() else {
                return Dequeue::Empty;
            };
            let slot = &mut self.flows[i];
            if slot.queue.is_empty() {
                slot.active = false;
                slot.deficit = 0;
                slot.charged = false;
                self.active.pop_front();
                continue;
            }
            if !slot.charged {
                slot.deficit += self.quantum;
                slot.charged = true;
            }
            let head_size = slot.queue.front().expect("checked non-empty").size;
            if slot.deficit >= head_size {
                let pkt = slot.queue.pop_front().expect("checked non-empty");
                slot.deficit -= pkt.size;
                if slot.queue.is_empty() {
                    // Leave the round: an empty flow keeps no credit.
                    slot.active = false;
                    slot.deficit = 0;
                    slot.charged = false;
                    self.active.pop_front();
                }
                self.occupied_bytes -= pkt.size;
                self.len -= 1;
                self.stats.on_dequeue(pkt.size, self.occupied_bytes);
                return Dequeue::Packet(pkt);
            }
            // Out of credit: carry the deficit to the next round.
            slot.charged = false;
            self.active.pop_front();
            self.active.push_back(i);
        }
    }

    fn occupied_bytes(&self) -> u64 {
        self.occupied_bytes
    }

    fn len(&self) -> usize {
        self.len
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut QueueStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;

    fn pkt(flow: u64, seq: u64, size: u64) -> PacketRef {
        PacketRef {
            id: PacketId(seq as u32),
            size,
            flow: FlowId(flow),
        }
    }

    fn drain(q: &mut DrrQueue) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut dropped = Vec::new();
        loop {
            match q.dequeue(SimTime::ZERO, &mut dropped) {
                Dequeue::Packet(p) => {
                    out.push((p.flow.0, p.id.0 as u64));
                }
                Dequeue::Empty => break,
                Dequeue::Wait(_) => panic!("DRR is work-conserving"),
            }
        }
        assert!(dropped.is_empty());
        out
    }

    /// Quantum-sized packets from two flows interleave strictly 1:1 even
    /// when one flow enqueued all its packets first. (With packets smaller
    /// than the quantum the carried deficit lets a flow send back-to-back
    /// every few rounds — still byte-fair, just not per-packet alternating.)
    #[test]
    fn two_flows_interleave() {
        let mut q = DrrQueue::new(1_000_000, DrrConfig::default());
        for seq in 0..3 {
            q.enqueue(SimTime::ZERO, pkt(1, seq, MTU_BYTES));
        }
        for seq in 0..3 {
            q.enqueue(SimTime::ZERO, pkt(2, seq, MTU_BYTES));
        }
        let order = drain(&mut q);
        assert_eq!(order, vec![(1, 0), (2, 0), (1, 1), (2, 1), (1, 2), (2, 2)]);
    }

    /// A flow with big packets gets the same *byte* share as one with
    /// small packets: over one full cycle the byte counts stay close.
    #[test]
    fn byte_fairness_with_mixed_sizes() {
        let mut q = DrrQueue::new(10_000_000, DrrConfig::default());
        // Flow 1: 100 x 1500 B; flow 2: 500 x 300 B. Same total bytes.
        for seq in 0..100 {
            q.enqueue(SimTime::ZERO, pkt(1, seq, 1_500));
        }
        for seq in 0..500 {
            q.enqueue(SimTime::ZERO, pkt(2, seq, 300));
        }
        // Serve exactly half the total bytes, then compare shares.
        let mut served = [0u64; 3];
        let mut total = 0u64;
        let mut dropped = Vec::new();
        while total < 150_000 {
            match q.dequeue(SimTime::ZERO, &mut dropped) {
                Dequeue::Packet(p) => {
                    served[p.flow.0 as usize] += p.size;
                    total += p.size;
                }
                other => panic!("queue drained early: {other:?}"),
            }
        }
        let ratio = served[1] as f64 / served[2] as f64;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "byte shares diverged: {served:?}"
        );
    }

    /// Per-flow FIFO order is preserved within each flow.
    #[test]
    fn per_flow_order_preserved() {
        let mut q = DrrQueue::new(1_000_000, DrrConfig::default());
        for seq in 0..10 {
            q.enqueue(SimTime::ZERO, pkt(7, seq, 700));
            q.enqueue(SimTime::ZERO, pkt(8, seq, 1_400));
        }
        let order = drain(&mut q);
        for f in [7u64, 8] {
            let seqs: Vec<u64> = order
                .iter()
                .filter(|&&(fl, _)| fl == f)
                .map(|&(_, s)| s)
                .collect();
            assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        }
    }

    /// The shared byte capacity tail-drops arrivals once exceeded.
    #[test]
    fn shared_capacity_tail_drops() {
        let mut q = DrrQueue::new(2_500, DrrConfig::default());
        assert_eq!(
            q.enqueue(SimTime::ZERO, pkt(1, 0, 1_000)),
            EnqueueResult::Accepted
        );
        assert_eq!(
            q.enqueue(SimTime::ZERO, pkt(2, 0, 1_000)),
            EnqueueResult::Accepted
        );
        assert_eq!(
            q.enqueue(SimTime::ZERO, pkt(3, 0, 1_000)),
            EnqueueResult::Dropped
        );
        assert_eq!(q.stats().drops, 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.flow_count(), 2);
    }

    /// A flow that drains and comes back re-enters the round with zero
    /// credit (no deficit hoarding across idle periods).
    #[test]
    fn idle_flow_loses_credit() {
        let mut q = DrrQueue::new(
            1_000_000,
            DrrConfig {
                quantum_bytes: 10_000,
            },
        );
        q.enqueue(SimTime::ZERO, pkt(1, 0, 100));
        drain(&mut q);
        // Re-activate: the big earlier quantum must not have been hoarded.
        q.enqueue(SimTime::ZERO, pkt(1, 1, 100));
        q.enqueue(SimTime::ZERO, pkt(2, 0, 100));
        let order = drain(&mut q);
        assert_eq!(order, vec![(1, 1), (2, 0)]);
        assert_eq!(q.flow_count(), 2);
    }
}
