//! Criterion benches: one per table/figure, sized down so `cargo bench`
//! completes in reasonable time. These measure the *wall-clock cost* of
//! regenerating each result and double as smoke tests that every
//! experiment harness runs end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::SimDuration;
use sammy_bench::figures;
use sammy_bench::lab::{self, LabArm, LabConfig};

fn quick_lab() -> LabConfig {
    LabConfig {
        run_for: SimDuration::from_secs(30),
        ..Default::default()
    }
}

fn bench_fig1_fig7_single_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_fig7_single_flow");
    g.sample_size(10);
    g.bench_function("control", |b| {
        b.iter(|| lab::single_flow(LabArm::Control, &quick_lab()))
    });
    g.bench_function("sammy", |b| {
        b.iter(|| lab::single_flow(LabArm::Sammy, &quick_lab()))
    });
    g.finish();
}

fn bench_fig2_analysis(c: &mut Criterion) {
    c.bench_function("fig2_analysis_curves", |b| {
        b.iter(|| figures::fig2(0.5, 20.0))
    });
}

fn bench_table2_ab(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_ab");
    g.sample_size(10);
    g.bench_function("tiny", |b| b.iter(|| figures::table2(0.08, 1, 0)));
    g.finish();
}

fn bench_table3_initial_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_initial_only");
    g.sample_size(10);
    g.bench_function("tiny", |b| b.iter(|| figures::table3(0.08, 1, 0)));
    g.finish();
}

fn bench_fig3_buckets(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_buckets");
    g.sample_size(10);
    g.bench_function("tiny", |b| b.iter(|| figures::fig3(0.08, 1, 0)));
    g.finish();
}

fn bench_fig4_burst(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_burst");
    g.sample_size(10);
    let cfg = quick_lab();
    g.bench_function("burst4", |b| b.iter(|| lab::burst_sweep_point(4, &cfg)));
    g.bench_function("burst40", |b| b.iter(|| lab::burst_sweep_point(40, &cfg)));
    g.finish();
}

fn bench_fig5_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_sweep");
    g.sample_size(10);
    g.bench_function("tiny", |b| b.iter(|| figures::fig5(0.08, 1, 0)));
    g.finish();
}

fn bench_fig6_cold_start(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_cold_start");
    g.sample_size(10);
    g.bench_function("tiny", |b| b.iter(|| figures::fig6(0.08, 1)));
    g.finish();
}

fn bench_fig8_neighbors(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_neighbors");
    g.sample_size(10);
    let cfg = quick_lab();
    g.bench_function("udp", |b| b.iter(|| lab::neighbor_udp(LabArm::Sammy, &cfg)));
    g.bench_function("tcp", |b| b.iter(|| lab::neighbor_tcp(LabArm::Sammy, &cfg)));
    g.bench_function("http", |b| {
        b.iter(|| lab::neighbor_http(LabArm::Sammy, &cfg))
    });
    g.finish();
}

fn bench_baseline_and_spiral(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_and_spiral");
    g.sample_size(10);
    g.bench_function("baseline_4x_tiny", |b| {
        b.iter(|| figures::baseline_4x(0.08, 1, 0))
    });
    g.bench_function("spiral", |b| b.iter(figures::spiral));
    g.finish();
}

criterion_group!(
    benches,
    bench_fig1_fig7_single_flow,
    bench_fig2_analysis,
    bench_table2_ab,
    bench_table3_initial_only,
    bench_fig3_buckets,
    bench_fig4_burst,
    bench_fig5_sweep,
    bench_fig6_cold_start,
    bench_fig8_neighbors,
    bench_baseline_and_spiral,
);
criterion_main!(benches);
