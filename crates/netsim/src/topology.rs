//! Topology builders.
//!
//! The paper's lab experiments use a dumbbell: several senders on one side,
//! several receivers on the other, all traffic crossing one bottleneck link.
//! [`Dumbbell`] builds that topology and installs all routes, leaving the
//! caller to attach endpoints to the host nodes.
//!
//! [`SharedTopology`] generalizes the lab to population scale: one CDN
//! origin serves N clients through a shared ISP core link (the contended
//! queue), with optional cross-traffic hosts contending on the same core.

use crate::engine::Simulator;
use crate::link::LinkConfig;
use crate::packet::{LinkId, NodeId};
use crate::time::SimDuration;
use crate::units::Rate;

/// Configuration for a dumbbell topology.
#[derive(Debug, Clone, Copy)]
pub struct DumbbellConfig {
    /// Bottleneck line rate.
    pub bottleneck_rate: Rate,
    /// Round-trip propagation time across the whole path (split between the
    /// two bottleneck directions; edge links add negligible delay).
    pub rtt: SimDuration,
    /// Bottleneck queue size as a multiple of the bandwidth-delay product.
    pub queue_bdp_multiple: f64,
    /// Edge (access) link rate. Should be much faster than the bottleneck so
    /// that only the bottleneck queue matters.
    pub edge_rate: Rate,
    /// Number of sender/receiver host pairs.
    pub pairs: usize,
}

impl Default for DumbbellConfig {
    /// The paper's lab setup (§6): 40 Mbps bottleneck, 5 ms RTT, 4x BDP
    /// queue, one host pair.
    fn default() -> Self {
        DumbbellConfig {
            bottleneck_rate: Rate::from_mbps(40.0),
            rtt: SimDuration::from_millis(5),
            queue_bdp_multiple: 4.0,
            edge_rate: Rate::from_gbps(1.0),
            pairs: 1,
        }
    }
}

/// A built dumbbell: left hosts (senders), right hosts (receivers), and the
/// two bottleneck directions.
#[derive(Debug)]
pub struct Dumbbell {
    /// Host nodes on the left (conventionally servers / senders).
    pub left: Vec<NodeId>,
    /// Host nodes on the right (conventionally clients / receivers).
    pub right: Vec<NodeId>,
    /// Left-side aggregation router.
    pub left_router: NodeId,
    /// Right-side aggregation router.
    pub right_router: NodeId,
    /// Bottleneck link carrying left-to-right traffic (the congested
    /// direction in all experiments: data flows server -> client).
    pub forward: LinkId,
    /// Bottleneck link carrying right-to-left traffic (ACKs, requests).
    pub reverse: LinkId,
}

impl Dumbbell {
    /// Build the dumbbell inside `sim` and install all routes.
    pub fn build(sim: &mut Simulator, cfg: DumbbellConfig) -> Self {
        assert!(cfg.pairs >= 1, "need at least one host pair");
        let left_router = sim.add_node();
        let right_router = sim.add_node();

        // Each bottleneck direction carries half the propagation RTT. The
        // queue is sized from the full RTT's BDP, as in the paper.
        let one_way = SimDuration::from_nanos(cfg.rtt.as_nanos() / 2);
        let bn_cfg = LinkConfig::with_bdp_queue(
            cfg.bottleneck_rate,
            one_way,
            cfg.rtt,
            cfg.queue_bdp_multiple,
        );
        let forward = sim.add_link(left_router, right_router, bn_cfg);
        let reverse = sim.add_link(right_router, left_router, bn_cfg);

        // Edge links: fast, short, deep-queued so they never interfere.
        let edge_cfg = LinkConfig::new(
            cfg.edge_rate,
            SimDuration::from_micros(10),
            64 * 1024 * 1024,
        );

        let mut left = Vec::with_capacity(cfg.pairs);
        let mut right = Vec::with_capacity(cfg.pairs);
        let mut edges = Vec::new();
        for _ in 0..cfg.pairs {
            let l = sim.add_node();
            let r = sim.add_node();
            let (l_up, l_down) = sim.add_duplex_link(l, left_router, edge_cfg);
            let (r_up, r_down) = sim.add_duplex_link(r, right_router, edge_cfg);
            edges.push((l, r, l_up, l_down, r_up, r_down));
            left.push(l);
            right.push(r);
        }

        // Routes. Hosts send everything toward their router; routers cross
        // the bottleneck for the far side and fan out locally for the near
        // side.
        for &(l, r, l_up, l_down, r_up, r_down) in &edges {
            // Every left host reaches every right host (and vice versa).
            for &(ol, or, ..) in &edges {
                sim.add_route(l, or, l_up);
                sim.add_route(r, ol, r_up);
                if ol != l {
                    sim.add_route(l, ol, l_up);
                    sim.add_route(r, or, r_up);
                }
            }
            sim.add_route(left_router, r, forward);
            sim.add_route(right_router, l, reverse);
            // Local fan-out for same-side traffic.
            sim.add_route(left_router, l, l_down);
            sim.add_route(right_router, r, r_down);
        }

        Dumbbell {
            left,
            right,
            left_router,
            right_router,
            forward,
            reverse,
        }
    }
}

/// Configuration for a [`SharedTopology`]: three link tiers, all duplex.
///
/// The default mirrors the paper-lab dumbbell hop for hop (same rates,
/// delays and queue sizes on every tier), so a one-session shared topology
/// reproduces the legacy dumbbell session byte-for-byte — the differential
/// test relies on this.
#[derive(Debug, Clone, Copy)]
pub struct SharedTopologyConfig {
    /// Number of video clients hanging off the access router.
    pub sessions: usize,
    /// Number of cross-traffic host pairs: sources attach at the core
    /// router, sinks at the access router, so cross flows contend on the
    /// ISP core queue and nothing else.
    pub cross_pairs: usize,
    /// CDN egress: origin <-> core.
    pub cdn: LinkConfig,
    /// ISP core: core <-> access. This is the shared bottleneck; give it
    /// an AQM/FQ/shaper discipline via `core.discipline`.
    pub core: LinkConfig,
    /// Access tier: access <-> each client.
    pub access: LinkConfig,
    /// Attachment links for cross-traffic hosts.
    pub edge: LinkConfig,
}

impl Default for SharedTopologyConfig {
    fn default() -> Self {
        let db = DumbbellConfig::default();
        let one_way = SimDuration::from_nanos(db.rtt.as_nanos() / 2);
        let fast = LinkConfig {
            rate: db.edge_rate,
            delay: SimDuration::from_micros(10),
            queue_bytes: 64 * 1024 * 1024,
            discipline: Default::default(),
        };
        SharedTopologyConfig {
            sessions: 1,
            cross_pairs: 0,
            cdn: fast,
            core: LinkConfig::with_bdp_queue(
                db.bottleneck_rate,
                one_way,
                db.rtt,
                db.queue_bdp_multiple,
            ),
            access: fast,
            edge: fast,
        }
    }
}

/// A built shared-bottleneck topology:
///
/// ```text
/// origin ==cdn== core ==ISP core== access --access--> client_0..N-1
///                 |                  |
///            cross sources      cross sinks
/// ```
///
/// All video sessions share every hop; cross traffic shares exactly the
/// ISP core queue (`core_down`).
#[derive(Debug)]
pub struct SharedTopology {
    /// CDN origin node (attach the multi-flow server endpoint here).
    pub origin: NodeId,
    /// ISP core router.
    pub core: NodeId,
    /// Access/aggregation router.
    pub access: NodeId,
    /// Client hosts, one per session.
    pub clients: Vec<NodeId>,
    /// Cross-traffic source hosts (attached at the core router).
    pub cross_sources: Vec<NodeId>,
    /// Cross-traffic sink hosts (attached at the access router).
    pub cross_sinks: Vec<NodeId>,
    /// origin -> core (CDN egress, shared by all sessions).
    pub cdn_down: LinkId,
    /// core -> origin (request/ACK return).
    pub cdn_up: LinkId,
    /// core -> access: THE shared bottleneck queue.
    pub core_down: LinkId,
    /// access -> core.
    pub core_up: LinkId,
    /// access -> client_i, one per session.
    pub access_down: Vec<LinkId>,
    /// client_i -> access.
    pub access_up: Vec<LinkId>,
}

impl SharedTopology {
    /// Build the topology inside `sim` and install all routes.
    ///
    /// # Panics
    /// Panics if `sessions` is zero.
    pub fn build(sim: &mut Simulator, cfg: SharedTopologyConfig) -> Self {
        assert!(cfg.sessions >= 1, "need at least one session");
        let origin = sim.add_node();
        let core = sim.add_node();
        let access = sim.add_node();

        let (cdn_down, cdn_up) = sim.add_duplex_link(origin, core, cfg.cdn);
        let (core_down, core_up) = sim.add_duplex_link(core, access, cfg.core);

        // Shared-path routes toward the origin.
        sim.add_route(core, origin, cdn_up);
        sim.add_route(access, origin, core_up);

        let mut clients = Vec::with_capacity(cfg.sessions);
        let mut access_down = Vec::with_capacity(cfg.sessions);
        let mut access_up = Vec::with_capacity(cfg.sessions);
        for _ in 0..cfg.sessions {
            let c = sim.add_node();
            let (down, up) = sim.add_duplex_link(access, c, cfg.access);
            sim.add_route(origin, c, cdn_down);
            sim.add_route(core, c, core_down);
            sim.add_route(access, c, down);
            sim.add_route(c, origin, up);
            clients.push(c);
            access_down.push(down);
            access_up.push(up);
        }

        let mut cross_sources = Vec::with_capacity(cfg.cross_pairs);
        let mut cross_sinks = Vec::with_capacity(cfg.cross_pairs);
        for _ in 0..cfg.cross_pairs {
            let src = sim.add_node();
            let sink = sim.add_node();
            let (src_up, src_down) = sim.add_duplex_link(src, core, cfg.edge);
            let (sink_up, sink_down) = sim.add_duplex_link(sink, access, cfg.edge);
            // Forward: src -> core -> (shared core queue) -> access -> sink.
            sim.add_route(src, sink, src_up);
            sim.add_route(core, sink, core_down);
            sim.add_route(access, sink, sink_down);
            // Reverse: sink -> access -> core -> src.
            sim.add_route(sink, src, sink_up);
            sim.add_route(access, src, core_up);
            sim.add_route(core, src, src_down);
            cross_sources.push(src);
            cross_sinks.push(sink);
        }

        SharedTopology {
            origin,
            core,
            access,
            clients,
            cross_sources,
            cross_sinks,
            cdn_down,
            cdn_up,
            core_down,
            core_up,
            access_down,
            access_up,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Endpoint, NodeCtx};
    use crate::packet::{FlowId, Packet, Payload};
    use crate::time::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Sink {
        arrived: Rc<RefCell<Vec<(SimTime, FlowId)>>>,
    }
    impl Endpoint for Sink {
        fn on_packet(&mut self, now: SimTime, pkt: Packet, _ctx: &mut NodeCtx) {
            self.arrived.borrow_mut().push((now, pkt.flow));
        }
        fn on_timer(&mut self, _now: SimTime, _token: u64, _ctx: &mut NodeCtx) {}
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn default_matches_paper_lab() {
        let cfg = DumbbellConfig::default();
        assert_eq!(cfg.bottleneck_rate, Rate::from_mbps(40.0));
        assert_eq!(cfg.rtt, SimDuration::from_millis(5));
        assert_eq!(cfg.queue_bdp_multiple, 4.0);
    }

    #[test]
    fn cross_traffic_reaches_far_side() {
        let mut sim = Simulator::new();
        let db = Dumbbell::build(
            &mut sim,
            DumbbellConfig {
                pairs: 2,
                ..Default::default()
            },
        );
        let arrived = Rc::new(RefCell::new(Vec::new()));
        for &r in &db.right {
            sim.set_endpoint(
                r,
                Box::new(Sink {
                    arrived: arrived.clone(),
                }),
            );
        }
        // Both left hosts send to their right peers.
        for (i, (&l, &r)) in db.left.iter().zip(db.right.iter()).enumerate() {
            let pkt =
                Packet::new(l, r, FlowId(i as u64), Payload::Datagram { seq: 0 }).with_size(1500);
            sim.inject(l, pkt);
        }
        sim.run_to_completion();
        let got = arrived.borrow();
        assert_eq!(got.len(), 2);
        // RTT/2 = 2.5 ms dominates: both arrive shortly after 2.5 ms.
        for &(t, _) in got.iter() {
            assert!(t > SimTime::from_micros(2500));
            assert!(t < SimTime::from_millis(4));
        }
    }

    #[test]
    fn reverse_path_works() {
        let mut sim = Simulator::new();
        let db = Dumbbell::build(&mut sim, DumbbellConfig::default());
        let arrived = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            db.left[0],
            Box::new(Sink {
                arrived: arrived.clone(),
            }),
        );
        let pkt = Packet::new(
            db.right[0],
            db.left[0],
            FlowId(5),
            Payload::Datagram { seq: 1 },
        )
        .with_size(40);
        sim.inject(db.right[0], pkt);
        sim.run_to_completion();
        assert_eq!(arrived.borrow().len(), 1);
    }

    #[test]
    fn bottleneck_queue_sized_from_bdp() {
        let mut sim = Simulator::new();
        let db = Dumbbell::build(&mut sim, DumbbellConfig::default());
        // 40 Mbps * 5 ms = 25 kB BDP; 4x = 100 kB.
        assert_eq!(sim.link(db.forward).queue.capacity_bytes(), 100_000);
    }

    #[test]
    fn shared_default_mirrors_dumbbell_tiers() {
        let mut sim = Simulator::new();
        let st = SharedTopology::build(&mut sim, SharedTopologyConfig::default());
        // Core tier carries the paper-lab bottleneck: 100 kB 4x-BDP queue.
        assert_eq!(sim.link(st.core_down).queue.capacity_bytes(), 100_000);
        assert_eq!(sim.link(st.core_down).rate, Rate::from_mbps(40.0));
        assert_eq!(sim.link(st.cdn_down).rate, Rate::from_gbps(1.0));
        assert_eq!(st.clients.len(), 1);
        assert!(st.cross_sources.is_empty());
    }

    #[test]
    fn shared_sessions_and_cross_traffic_route_end_to_end() {
        let mut sim = Simulator::new();
        let st = SharedTopology::build(
            &mut sim,
            SharedTopologyConfig {
                sessions: 3,
                cross_pairs: 2,
                ..Default::default()
            },
        );
        let arrived = Rc::new(RefCell::new(Vec::new()));
        for &n in st
            .clients
            .iter()
            .chain(&st.cross_sinks)
            .chain([st.origin, st.cross_sources[0], st.cross_sources[1]].iter())
        {
            sim.set_endpoint(
                n,
                Box::new(Sink {
                    arrived: arrived.clone(),
                }),
            );
        }
        // Origin -> every client.
        for (i, &c) in st.clients.iter().enumerate() {
            let pkt = Packet::new(st.origin, c, FlowId(i as u64), Payload::Datagram { seq: 0 })
                .with_size(1500);
            sim.inject(st.origin, pkt);
        }
        // Every client -> origin (request path).
        for (i, &c) in st.clients.iter().enumerate() {
            let pkt = Packet::new(
                c,
                st.origin,
                FlowId(10 + i as u64),
                Payload::Datagram { seq: 0 },
            )
            .with_size(40);
            sim.inject(c, pkt);
        }
        // Cross pairs both ways.
        for j in 0..2 {
            let fwd = Packet::new(
                st.cross_sources[j],
                st.cross_sinks[j],
                FlowId(20 + j as u64),
                Payload::Datagram { seq: 0 },
            )
            .with_size(1500);
            sim.inject(st.cross_sources[j], fwd);
            let rev = Packet::new(
                st.cross_sinks[j],
                st.cross_sources[j],
                FlowId(30 + j as u64),
                Payload::Datagram { seq: 1 },
            )
            .with_size(40);
            sim.inject(st.cross_sinks[j], rev);
        }
        sim.run_to_completion();
        assert_eq!(arrived.borrow().len(), 10);
    }
}
