//! The resume-equivalence battery for the streaming shard-merge runner.
//!
//! The contract under test (DESIGN.md §16): for a fixed configuration —
//! population, arms, seed, `shard_size` — the streaming runner's final
//! state is **bit-identical** (a) for every thread count, (b) across any
//! kill-at-a-checkpoint/resume boundary (including chains of kills, and
//! resumes with a different thread count than the killed run), and (c)
//! across corrupt-newest-checkpoint fallback. Corruption is always
//! detected and tagged; an unusable checkpoint directory is a hard
//! [`SimError::Checkpoint`], never a silent wrong answer.

use abtest::{
    draw_population_indexed, paired_delta, Arm, Experiment, ExperimentConfig, PopulationConfig,
    StreamRun, METRICS,
};
use netsim::SimError;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

const USERS: usize = 12;
const SHARD_SIZE: usize = 3; // 4 shards
const SEED: u64 = 77;

/// Short titles so the battery stays fast on one debug-mode core.
fn light_population() -> PopulationConfig {
    PopulationConfig {
        title_duration_s: (20, 45),
        ..PopulationConfig::default()
    }
}

fn light_cfg(threads: usize) -> ExperimentConfig {
    ExperimentConfig {
        users_per_arm: USERS,
        pre_sessions: 1,
        sessions_per_user: 1,
        seed: SEED,
        bootstrap_reps: 40,
        threads,
    }
}

fn builder(threads: usize) -> abtest::ExperimentBuilder<'static> {
    Experiment::builder()
        .treatment(Arm::Sammy { c0: 3.2, c1: 2.8 })
        .config(light_cfg(threads))
        .population_config(light_population())
        .shard_size(SHARD_SIZE)
        .checkpoint_every(1)
}

/// A unique scratch dir, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sammy-stream-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn checkpoint_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "bin"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

/// The uninterrupted single-thread golden run, computed once per process.
fn golden() -> &'static StreamRun {
    static GOLDEN: OnceLock<StreamRun> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let run = builder(1).run_streaming().unwrap();
        assert!(run.completed);
        assert_eq!(run.state.users as usize, USERS);
        run
    })
}

#[test]
fn thread_count_does_not_change_a_single_bit() {
    let base = golden();
    for threads in [4, 8] {
        let run = builder(threads).run_streaming().unwrap();
        assert_eq!(
            run.fingerprint(),
            base.fingerprint(),
            "threads={threads} changed the merged state"
        );
        assert_eq!(run.report().render(), base.report().render());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Kill the run after a random checkpoint (under a random thread
    /// count), resume under another thread count: the finished state is
    /// bit-identical to the uninterrupted golden run.
    #[test]
    fn killed_then_resumed_run_is_bit_identical(
        abort_after in 1usize..4,
        kill_threads in 1usize..5,
        resume_threads in 1usize..5,
    ) {
        let dir = ScratchDir::new(&format!("kill{abort_after}t{kill_threads}r{resume_threads}"));
        let partial = builder(kill_threads)
            .checkpoint_dir(dir.path())
            .abort_after_checkpoints(abort_after)
            .run_streaming()
            .unwrap();
        prop_assert!(!partial.completed);
        prop_assert_eq!(partial.merged_shards, abort_after);
        prop_assert_eq!(partial.checkpoints_written, abort_after);

        let resumed = builder(resume_threads)
            .checkpoint_dir(dir.path())
            .resume(true)
            .run_streaming()
            .unwrap();
        prop_assert!(resumed.completed);
        prop_assert_eq!(resumed.resumed_from, Some(abort_after));
        prop_assert!(resumed.fallback_notes.is_empty());
        prop_assert_eq!(resumed.fingerprint(), golden().fingerprint());
        prop_assert_eq!(resumed.report().render(), golden().report().render());
    }
}

#[test]
fn chain_of_two_kills_still_matches() {
    let dir = ScratchDir::new("chain");
    let first = builder(2)
        .checkpoint_dir(dir.path())
        .abort_after_checkpoints(1)
        .run_streaming()
        .unwrap();
    assert_eq!(first.merged_shards, 1);

    let second = builder(1)
        .checkpoint_dir(dir.path())
        .resume(true)
        .abort_after_checkpoints(1)
        .run_streaming()
        .unwrap();
    assert!(!second.completed);
    assert_eq!(second.resumed_from, Some(1));
    assert_eq!(second.merged_shards, 2);

    let finished = builder(3)
        .checkpoint_dir(dir.path())
        .resume(true)
        .run_streaming()
        .unwrap();
    assert!(finished.completed);
    assert_eq!(finished.fingerprint(), golden().fingerprint());
}

#[test]
fn resume_of_a_completed_run_is_identical_without_rerunning() {
    let dir = ScratchDir::new("completed");
    let full = builder(1)
        .checkpoint_dir(dir.path())
        .run_streaming()
        .unwrap();
    assert!(full.completed);
    assert_eq!(full.fingerprint(), golden().fingerprint());

    // The final checkpoint covers every shard: resume decodes it and runs
    // zero sessions, yet the state (and fingerprint) is unchanged.
    let resumed = builder(1)
        .checkpoint_dir(dir.path())
        .resume(true)
        .run_streaming()
        .unwrap();
    assert!(resumed.completed);
    assert_eq!(resumed.resumed_from, Some(resumed.shards));
    assert_eq!(resumed.fingerprint(), golden().fingerprint());
}

#[test]
fn corrupt_newest_checkpoint_falls_back_with_a_tagged_note() {
    let dir = ScratchDir::new("corrupt-one");
    let partial = builder(1)
        .checkpoint_dir(dir.path())
        .abort_after_checkpoints(2)
        .run_streaming()
        .unwrap();
    assert_eq!(partial.checkpoints_written, 2);
    let files = checkpoint_files(dir.path());
    assert_eq!(files.len(), 2, "keep_checkpoints retains two files");

    // Tear the newest file mid-payload.
    let newest = files.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(newest, &bytes).unwrap();

    let resumed = builder(1)
        .checkpoint_dir(dir.path())
        .resume(true)
        .run_streaming()
        .unwrap();
    // Fell back to the shard-1 checkpoint, said so, and still finished
    // bit-identical.
    assert_eq!(resumed.resumed_from, Some(1));
    assert_eq!(resumed.fallback_notes.len(), 1);
    assert!(
        resumed.fallback_notes[0].contains("checksum"),
        "note must name the defect: {:?}",
        resumed.fallback_notes
    );
    assert_eq!(resumed.fingerprint(), golden().fingerprint());
}

#[test]
fn all_checkpoints_corrupt_is_a_hard_tagged_error() {
    let dir = ScratchDir::new("corrupt-all");
    builder(1)
        .checkpoint_dir(dir.path())
        .abort_after_checkpoints(2)
        .run_streaming()
        .unwrap();
    for f in checkpoint_files(dir.path()) {
        let bytes = std::fs::read(&f).unwrap();
        std::fs::write(&f, &bytes[..bytes.len() / 2]).unwrap(); // truncate
    }
    let err = builder(1)
        .checkpoint_dir(dir.path())
        .resume(true)
        .run_streaming()
        .unwrap_err();
    match &err {
        SimError::Checkpoint { reason, .. } => {
            assert!(reason.contains("corrupt"), "{err}");
        }
        other => panic!("expected SimError::Checkpoint, got {other:?}"),
    }
}

#[test]
fn checkpoint_of_a_different_run_is_rejected() {
    let dir = ScratchDir::new("mismatch");
    builder(1)
        .checkpoint_dir(dir.path())
        .abort_after_checkpoints(1)
        .run_streaming()
        .unwrap();
    // Same directory, different seed → different config fingerprint.
    let err = builder(1)
        .seed(SEED + 1)
        .checkpoint_dir(dir.path())
        .resume(true)
        .run_streaming()
        .unwrap_err();
    match &err {
        SimError::Checkpoint { reason, .. } => {
            assert!(reason.contains("fingerprint"), "{err}");
        }
        other => panic!("expected SimError::Checkpoint, got {other:?}"),
    }
}

#[test]
fn resume_without_checkpoint_dir_is_invalid_config() {
    let err = builder(1).resume(true).run_streaming().unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig { .. }), "{err}");
}

#[test]
fn explicit_and_lazy_populations_are_bit_identical() {
    // The lazy path derives user `i` on demand; materializing the same
    // derivation up front and passing it as an explicit borrowed slice
    // must produce the identical run (the builder no longer clones the
    // slice, so this is also the zero-copy path).
    let pop = draw_population_indexed(&light_population(), USERS, SEED);
    let explicit = builder(1).population(&pop).run_streaming().unwrap();
    assert_eq!(explicit.fingerprint(), golden().fingerprint());
    assert_eq!(explicit.report().render(), golden().report().render());
}

#[test]
fn streaming_stats_match_the_collecting_runner_exactly() {
    // Same explicit population through both runners: every exact
    // statistic (counts, paired mean deltas) must agree; only the CI
    // machinery (resampling vs Poisson replicates) and quantile estimator
    // (sort vs t-digest) are allowed to differ.
    let pop = draw_population_indexed(&light_population(), USERS, SEED);
    let collected = builder(1).population(&pop).run().unwrap();
    let streamed = builder(1).population(&pop).run_streaming().unwrap();

    assert_eq!(streamed.state.users as usize, USERS);
    assert_eq!(
        streamed.state.control_sessions as usize,
        collected.control.sessions.len()
    );
    assert_eq!(
        streamed.state.treatment_sessions as usize,
        collected.treatment.sessions.len()
    );

    for (i, &(name, _, f)) in METRICS.iter().enumerate() {
        let acc = &streamed.state.metrics()[i];
        let c_vals = collected.control.metric(f);
        let t_vals = collected.treatment.metric(f);
        assert_eq!(acc.control().count() as usize, c_vals.len(), "{name}");
        assert_eq!(acc.treatment().count() as usize, t_vals.len(), "{name}");
        let c_mean = c_vals.iter().sum::<f64>() / c_vals.len().max(1) as f64;
        assert!(
            (acc.control().mean() - c_mean).abs() <= 1e-9 * c_mean.abs().max(1.0),
            "{name}: streaming mean {} vs collected {c_mean}",
            acc.control().mean()
        );

        let c_by_user = collected.control.metric_by_user(f);
        let t_by_user = collected.treatment.metric_by_user(f);
        let reference = paired_delta(&c_by_user, &t_by_user, 40, 1);
        let streaming = acc.paired_delta();
        if reference.mean_delta_pct.is_nan() {
            assert!(streaming.mean_delta_pct.is_nan(), "{name}");
        } else {
            assert!(
                (streaming.mean_delta_pct - reference.mean_delta_pct).abs()
                    <= 1e-9 * reference.mean_delta_pct.abs().max(1.0),
                "{name}: paired mean {} vs {}",
                streaming.mean_delta_pct,
                reference.mean_delta_pct
            );
        }
    }
}

#[cfg(feature = "obs")]
#[test]
fn resumed_telemetry_jsonl_is_byte_identical() {
    let dir = ScratchDir::new("obs-jsonl");
    let golden_jsonl = golden().state.registry.to_jsonl();
    assert!(golden_jsonl.contains("abtest.sessions"));

    builder(2)
        .checkpoint_dir(dir.path())
        .abort_after_checkpoints(2)
        .run_streaming()
        .unwrap();
    let resumed = builder(4)
        .checkpoint_dir(dir.path())
        .resume(true)
        .run_streaming()
        .unwrap();
    assert_eq!(resumed.state.registry.to_jsonl(), golden_jsonl);
}
