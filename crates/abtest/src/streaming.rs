//! The streaming shard-merge runner: million-user arms at O(threads)
//! memory, with checkpoint/resume bit-identical to an uninterrupted run.
//!
//! The collecting runner ([`crate::experiment::ExperimentBuilder::run`])
//! keeps one slot per user, which is exactly right for table-sized
//! experiments and exactly wrong for fleet-sized ones. This runner never
//! materializes anything per-user:
//!
//! 1. The population is split into fixed-size **shards** (user index
//!    ranges). The shard partition depends only on `shard_size` — never on
//!    the thread count — so the merge order below is an invariant of the
//!    configuration.
//! 2. Workers claim shard indices from an atomic counter and fold each
//!    user's paired sessions (in index order) straight into a
//!    [`ShardState`]: per-metric t-digest summaries, exact paired-delta
//!    sums, Poisson-bootstrap replicate sums, and the telemetry registry.
//!    Session records die with the user.
//! 3. A merger (the calling thread) folds completed shards into the global
//!    state in **strict shard order**. Workers that run too far ahead of
//!    the merger block (`max_pending_shards`), bounding completed-but-
//!    unmerged state to O(threads).
//!
//! Every accumulator merge is deterministic given the merge order, and the
//! merge order is fixed, so the final state — down to t-digest centroid
//! bits and the telemetry JSONL — is identical for 1 thread or 64.
//!
//! **Checkpoints** are the same determinism viewed as fault tolerance: the
//! global state after merging shards `0..K` plus `K` itself. A resumed run
//! decodes the state (bit-exact; see [`tdigest::wire`]) and continues at
//! shard `K`, replaying the identical merge sequence, so a run killed at
//! any checkpoint boundary finishes byte-identical to one that never died.
//! Writes are atomic (tmp + rename), files carry an FNV-1a checksum and a
//! config fingerprint, and the previous checkpoint is retained: a torn
//! write is detected and skipped (with a note in
//! [`StreamRun::fallback_notes`]), a config mismatch is a hard error, and
//! an all-corrupt directory fails with [`SimError::Checkpoint`] — never a
//! silent wrong answer.

use crate::experiment::{panic_message, run_user_pair, Arm, ExperimentConfig, METRICS};
use crate::population::Population;
use crate::stats::{percentile, Aggregate, PairedDelta, StreamingStat};
use netsim::SimError;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use tdigest::wire::{self, Fnv, Reader};

/// First 8 bytes of every checkpoint file ("SMYCKPT1", little-endian).
const CKPT_MAGIC: u64 = u64::from_le_bytes(*b"SMYCKPT1");
/// Bumped whenever the payload layout changes; old files are rejected.
const CKPT_VERSION: u32 = 1;
/// Failure samples retained in the merged state (counts are exact; the
/// samples are the first few in population order, for error messages).
const MAX_FAILURE_SAMPLES: usize = 32;

/// Options for the streaming runner (set via the
/// [`ExperimentBuilder`](crate::experiment::ExperimentBuilder) methods).
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Users per shard. Defines the merge order, so it — unlike the thread
    /// count — is part of the result's identity.
    pub shard_size: usize,
    /// Merged shards between periodic checkpoints (a final checkpoint is
    /// always written when a checkpoint dir is set).
    pub checkpoint_every: usize,
    /// Where checkpoints live; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the newest valid checkpoint in `checkpoint_dir`.
    pub resume: bool,
    /// Checkpoint files retained (older ones are pruned). Two means a torn
    /// newest file can always fall back to its predecessor.
    pub keep_checkpoints: usize,
    /// Bound on completed-but-unmerged shards (0 = `2 × threads`).
    pub max_pending_shards: usize,
    /// Test/ops hook: stop cleanly after writing this many checkpoints,
    /// simulating a kill at a checkpoint boundary.
    pub abort_after_checkpoints: Option<usize>,
    /// Append one JSONL progress line per merged shard (live tail for the
    /// serve daemon's `GET /runs/:id/metrics`). Lines carry only
    /// deterministic counters — never wall-clock — but the *file* is an
    /// append log across kills and resumes, so it is a monitoring surface,
    /// not part of the run's bit-identity contract.
    pub progress_path: Option<PathBuf>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shard_size: 256,
            checkpoint_every: 16,
            checkpoint_dir: None,
            resume: false,
            keep_checkpoints: 2,
            max_pending_shards: 0,
            abort_after_checkpoints: None,
            progress_path: None,
        }
    }
}

/// One step of a SplitMix64 stream (also its finalizer when used once):
/// the workspace's standard cheap, well-mixed hash.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix two words into an independent key.
pub(crate) fn mix2(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix(&mut s)
}

/// Poisson(1) variate derived from a 64-bit key (Knuth's product method
/// over a SplitMix64 uniform stream). Deterministic and order-free, which
/// is what makes the streaming bootstrap mergeable: the weight of user `u`
/// in replicate `r` depends only on `(seed, metric, u, r)`, never on which
/// shard or thread folded it.
fn poisson1(key: u64) -> u64 {
    const L: f64 = 0.367_879_441_171_442_33; // e^{-1}
    let mut state = key;
    let mut p = 1.0f64;
    let mut k = 0u64;
    loop {
        let u = (splitmix(&mut state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        p *= u;
        if p <= L || k >= 64 {
            return k;
        }
        k += 1;
    }
}

/// Percent change with the same conventions as the collecting report.
fn pct_change(control: f64, treatment: f64) -> f64 {
    if control == 0.0 || !control.is_finite() || !treatment.is_finite() {
        f64::NAN
    } else {
        (treatment - control) / control.abs() * 100.0
    }
}

/// Mergeable accumulator for one metric of the 8-row table.
///
/// Per arm: a [`StreamingStat`] (t-digest quantiles + exact count/mean).
/// For the paired comparison: the exact sum/count of per-session
/// `(t − c)/c × 100` deltas, plus `R` Poisson-bootstrap replicates of that
/// same (sum, count) pair — a cluster bootstrap over users that needs
/// `O(R)` memory instead of `O(users)` resampling.
#[derive(Debug, Clone)]
pub struct MetricAcc {
    control: StreamingStat,
    treatment: StreamingStat,
    delta_sum: f64,
    delta_count: u64,
    /// Per bootstrap replicate: (weighted delta sum, weighted pair count).
    boot: Vec<(f64, u64)>,
}

impl MetricAcc {
    fn new(reps: usize) -> Self {
        MetricAcc {
            control: StreamingStat::new(),
            treatment: StreamingStat::new(),
            delta_sum: 0.0,
            delta_count: 0,
            boot: vec![(0.0, 0); reps],
        }
    }

    /// Fold one user's per-session values for this metric. `key` must be
    /// unique per (seed, metric, user) — it seeds the user's bootstrap
    /// weights.
    fn fold_user(&mut self, key: u64, c_vals: &[f64], t_vals: &[f64]) {
        for &v in c_vals {
            self.control.add(v);
        }
        for &v in t_vals {
            self.treatment.add(v);
        }
        // Paired per-session deltas, with the same pairing/skip rules as
        // `stats::paired_delta`.
        let mut sum = 0.0;
        let mut n = 0u64;
        for (&cv, &tv) in c_vals.iter().zip(t_vals) {
            if cv.is_finite() && tv.is_finite() && cv != 0.0 {
                sum += (tv - cv) / cv.abs() * 100.0;
                n += 1;
            }
        }
        if n == 0 {
            return;
        }
        self.delta_sum += sum;
        self.delta_count += n;
        for (rep, slot) in self.boot.iter_mut().enumerate() {
            let w = poisson1(mix2(key, rep as u64));
            if w > 0 {
                slot.0 += w as f64 * sum;
                slot.1 += w * n;
            }
        }
    }

    /// Fold another shard's accumulator. Exact for every field; the digest
    /// merge is order-sensitive in its low bits, which is why shards merge
    /// in a fixed order.
    fn merge(&mut self, other: &MetricAcc) {
        assert_eq!(self.boot.len(), other.boot.len(), "bootstrap reps differ");
        self.control.merge(&other.control);
        self.treatment.merge(&other.treatment);
        self.delta_sum += other.delta_sum;
        self.delta_count += other.delta_count;
        for (a, b) in self.boot.iter_mut().zip(&other.boot) {
            a.0 += b.0;
            a.1 += b.1;
        }
    }

    /// Control-arm summary.
    pub fn control(&self) -> &StreamingStat {
        &self.control
    }

    /// Treatment-arm summary.
    pub fn treatment(&self) -> &StreamingStat {
        &self.treatment
    }

    /// Number of (control, treatment) session pairs that entered the
    /// paired delta.
    pub fn pairs(&self) -> u64 {
        self.delta_count
    }

    /// The paired mean delta with its 95% Poisson-bootstrap CI.
    pub fn paired_delta(&self) -> PairedDelta {
        if self.delta_count == 0 {
            return PairedDelta {
                mean_delta_pct: f64::NAN,
                ci_low: f64::NAN,
                ci_high: f64::NAN,
            };
        }
        let mean = self.delta_sum / self.delta_count as f64;
        let boots: Vec<f64> = self
            .boot
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(s, n)| s / *n as f64)
            .collect();
        let (lo, hi) = if boots.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            (percentile(&boots, 0.025), percentile(&boots, 0.975))
        };
        PairedDelta {
            mean_delta_pct: mean,
            ci_low: lo,
            ci_high: hi,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.control.encode(out);
        self.treatment.encode(out);
        wire::put_f64(out, self.delta_sum);
        wire::put_u64(out, self.delta_count);
        wire::put_u64(out, self.boot.len() as u64);
        for &(s, n) in &self.boot {
            wire::put_f64(out, s);
            wire::put_u64(out, n);
        }
    }

    fn decode(r: &mut Reader<'_>, expect_reps: usize) -> Result<MetricAcc, wire::WireError> {
        let control = StreamingStat::decode(r)?;
        let treatment = StreamingStat::decode(r)?;
        let delta_sum = r.f64("metric.delta_sum")?;
        let delta_count = r.u64("metric.delta_count")?;
        let reps = r.len("metric.boot_len")?;
        if reps != expect_reps {
            return Err(wire::WireError {
                context: "metric.boot_len",
            });
        }
        let mut boot = Vec::with_capacity(reps);
        for _ in 0..reps {
            let s = r.f64("metric.boot_sum")?;
            let n = r.u64("metric.boot_count")?;
            boot.push((s, n));
        }
        Ok(MetricAcc {
            control,
            treatment,
            delta_sum,
            delta_count,
            boot,
        })
    }
}

/// A user whose sessions panicked, as retained in the streaming state.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamFailure {
    /// The user's id.
    pub user: u64,
    /// The user's index in the population.
    pub index: u64,
    /// The panic payload, stringified.
    pub message: String,
}

/// The mergeable per-shard (and, after merging, global) experiment state:
/// one [`MetricAcc`] per table row, exact user/session/failure counts, a
/// bounded failure sample, and the merged telemetry registry.
#[derive(Debug)]
pub struct ShardState {
    metrics: Vec<MetricAcc>,
    /// Users folded in (successes only).
    pub users: u64,
    /// Control-arm sessions folded in.
    pub control_sessions: u64,
    /// Treatment-arm sessions folded in.
    pub treatment_sessions: u64,
    /// Users whose sessions panicked (exact count).
    pub failures: u64,
    /// The first [`MAX_FAILURE_SAMPLES`] failures in population order.
    pub failure_samples: Vec<StreamFailure>,
    /// Telemetry merged in population order (empty without the `obs`
    /// feature).
    pub registry: obs::Registry,
}

impl ShardState {
    fn new(reps: usize) -> Self {
        ShardState {
            metrics: (0..METRICS.len()).map(|_| MetricAcc::new(reps)).collect(),
            users: 0,
            control_sessions: 0,
            treatment_sessions: 0,
            failures: 0,
            failure_samples: Vec::new(),
            registry: obs::Registry::new(),
        }
    }

    /// Per-metric accumulators, in [`METRICS`] order.
    pub fn metrics(&self) -> &[MetricAcc] {
        &self.metrics
    }

    fn fold_user(
        &mut self,
        seed: u64,
        user_id: u64,
        control: &[crate::experiment::SessionRecord],
        treatment: &[crate::experiment::SessionRecord],
        registry: &obs::Registry,
    ) {
        for (idx, &(_, _, f)) in METRICS.iter().enumerate() {
            let c_vals: Vec<f64> = control.iter().filter_map(f).collect();
            let t_vals: Vec<f64> = treatment.iter().filter_map(f).collect();
            let key = mix2(mix2(seed, 0xB007_5EED ^ idx as u64), user_id);
            self.metrics[idx].fold_user(key, &c_vals, &t_vals);
        }
        self.users += 1;
        self.control_sessions += control.len() as u64;
        self.treatment_sessions += treatment.len() as u64;
        self.registry.merge(registry);
    }

    fn record_failure(&mut self, user: u64, index: u64, message: String) {
        self.failures += 1;
        if self.failure_samples.len() < MAX_FAILURE_SAMPLES {
            self.failure_samples.push(StreamFailure {
                user,
                index,
                message,
            });
        }
    }

    fn merge(&mut self, other: &ShardState) {
        for (a, b) in self.metrics.iter_mut().zip(&other.metrics) {
            a.merge(b);
        }
        self.users += other.users;
        self.control_sessions += other.control_sessions;
        self.treatment_sessions += other.treatment_sessions;
        self.failures += other.failures;
        for f in &other.failure_samples {
            if self.failure_samples.len() >= MAX_FAILURE_SAMPLES {
                break;
            }
            self.failure_samples.push(f.clone());
        }
        self.registry.merge(&other.registry);
    }

    /// Serialize (the checkpoint payload).
    pub fn encode(&self, out: &mut Vec<u8>) {
        wire::put_u64(out, self.metrics.len() as u64);
        for m in &self.metrics {
            m.encode(out);
        }
        wire::put_u64(out, self.users);
        wire::put_u64(out, self.control_sessions);
        wire::put_u64(out, self.treatment_sessions);
        wire::put_u64(out, self.failures);
        wire::put_u64(out, self.failure_samples.len() as u64);
        for f in &self.failure_samples {
            wire::put_u64(out, f.user);
            wire::put_u64(out, f.index);
            wire::put_str(out, &f.message);
        }
        self.registry.encode(out);
    }

    fn decode(r: &mut Reader<'_>, expect_reps: usize) -> Result<ShardState, wire::WireError> {
        let n_metrics = r.len("state.metrics")?;
        if n_metrics != METRICS.len() {
            return Err(wire::WireError {
                context: "state.metrics",
            });
        }
        let mut metrics = Vec::with_capacity(n_metrics);
        for _ in 0..n_metrics {
            metrics.push(MetricAcc::decode(r, expect_reps)?);
        }
        let users = r.u64("state.users")?;
        let control_sessions = r.u64("state.control_sessions")?;
        let treatment_sessions = r.u64("state.treatment_sessions")?;
        let failures = r.u64("state.failures")?;
        let n_fail = r.len("state.failure_samples")?;
        if n_fail > MAX_FAILURE_SAMPLES {
            return Err(wire::WireError {
                context: "state.failure_samples",
            });
        }
        let mut failure_samples = Vec::with_capacity(n_fail);
        for _ in 0..n_fail {
            failure_samples.push(StreamFailure {
                user: r.u64("failure.user")?,
                index: r.u64("failure.index")?,
                message: r.str("failure.message")?.to_string(),
            });
        }
        let registry = obs::Registry::decode(r)?;
        Ok(ShardState {
            metrics,
            users,
            control_sessions,
            treatment_sessions,
            failures,
            failure_samples,
            registry,
        })
    }
}

/// The fingerprint that ties a checkpoint to one exact run configuration.
/// Any difference — population, arms, seeds, session counts, shard size,
/// bootstrap reps — makes resume a hard error instead of a subtle lie.
fn config_fingerprint(
    population: &Population<'_>,
    control: Arm,
    treatment: Arm,
    cfg: &ExperimentConfig,
    shard_size: usize,
) -> u64 {
    let mut h = Fnv::new();
    h.u64(population.fingerprint());
    h.str(&control.label());
    h.str(&treatment.label());
    h.u64(cfg.pre_sessions as u64);
    h.u64(cfg.sessions_per_user as u64);
    h.u64(cfg.seed);
    h.u64(cfg.bootstrap_reps as u64);
    h.u64(shard_size as u64);
    h.finish()
}

/// Why a checkpoint file couldn't be used.
#[derive(Debug)]
enum CkptReject {
    /// Torn/corrupt/truncated — eligible for fallback to an older file.
    Corrupt(String),
    /// Valid file for a *different* run — a hard error, no fallback.
    ConfigMismatch,
}

fn checkpoint_path(dir: &Path, next_shard: usize) -> PathBuf {
    dir.join(format!("ckpt-{next_shard:010}.bin"))
}

/// Checkpoint files in `dir`, ascending by shard index.
fn list_checkpoints(dir: &Path) -> Result<Vec<(PathBuf, usize)>, SimError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if let Some(num) = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(".bin"))
        {
            if let Ok(shard) = num.parse::<usize>() {
                out.push((path, shard));
            }
        }
    }
    out.sort_by_key(|&(_, shard)| shard);
    Ok(out)
}

/// Atomically write the checkpoint for `next_shard` and prune old files.
fn write_checkpoint(
    dir: &Path,
    config_fp: u64,
    next_shard: usize,
    state: &ShardState,
    keep: usize,
) -> Result<(), SimError> {
    std::fs::create_dir_all(dir)?;
    let mut buf = Vec::new();
    wire::put_u64(&mut buf, CKPT_MAGIC);
    wire::put_u32(&mut buf, CKPT_VERSION);
    wire::put_u64(&mut buf, config_fp);
    wire::put_u64(&mut buf, next_shard as u64);
    state.encode(&mut buf);
    let mut h = Fnv::new();
    h.write(&buf);
    wire::put_u64(&mut buf, h.finish());

    let tmp = dir.join(format!("ckpt-{next_shard:010}.tmp"));
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, checkpoint_path(dir, next_shard))?;

    let mut files = list_checkpoints(dir)?;
    while files.len() > keep.max(1) {
        let (path, _) = files.remove(0);
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

/// Validate and decode one checkpoint file.
fn load_checkpoint(
    path: &Path,
    config_fp: u64,
    expect_reps: usize,
) -> Result<(ShardState, usize), CkptReject> {
    let corrupt = |what: &str| CkptReject::Corrupt(what.to_string());
    let bytes = std::fs::read(path).map_err(|e| corrupt(&format!("unreadable: {e}")))?;
    if bytes.len() < 8 {
        return Err(corrupt("shorter than its checksum"));
    }
    let (head, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    let mut h = Fnv::new();
    h.write(head);
    if h.finish() != stored {
        return Err(corrupt("checksum mismatch (torn write?)"));
    }
    let mut r = Reader::new(head);
    let magic = r.u64("ckpt.magic").map_err(|e| corrupt(&e.to_string()))?;
    if magic != CKPT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = r.u32("ckpt.version").map_err(|e| corrupt(&e.to_string()))?;
    if version != CKPT_VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let fp = r.u64("ckpt.config").map_err(|e| corrupt(&e.to_string()))?;
    if fp != config_fp {
        return Err(CkptReject::ConfigMismatch);
    }
    let next_shard = r
        .u64("ckpt.next_shard")
        .map_err(|e| corrupt(&e.to_string()))? as usize;
    let state = ShardState::decode(&mut r, expect_reps).map_err(|e| corrupt(&e.to_string()))?;
    if !r.is_done() {
        return Err(corrupt("trailing bytes"));
    }
    Ok((state, next_shard))
}

/// Find the newest usable checkpoint: scan descending, skipping corrupt
/// files (noted), erroring hard on a config mismatch or an all-corrupt
/// directory. `Ok(None)` = nothing to resume, start fresh.
fn resume_scan(
    dir: &Path,
    config_fp: u64,
    expect_reps: usize,
) -> Result<Option<(ShardState, usize, Vec<String>)>, SimError> {
    if !dir.exists() {
        return Ok(None);
    }
    let files = list_checkpoints(dir)?;
    if files.is_empty() {
        return Ok(None);
    }
    let mut notes = Vec::new();
    for (path, _) in files.iter().rev() {
        match load_checkpoint(path, config_fp, expect_reps) {
            Ok((state, next_shard)) => return Ok(Some((state, next_shard, notes))),
            Err(CkptReject::Corrupt(reason)) => {
                notes.push(format!("{}: {reason}", path.display()));
            }
            Err(CkptReject::ConfigMismatch) => {
                return Err(SimError::Checkpoint {
                    path: path.display().to_string(),
                    reason: "config fingerprint mismatch: checkpoint belongs to a different run"
                        .into(),
                });
            }
        }
    }
    Err(SimError::Checkpoint {
        path: dir.display().to_string(),
        reason: format!(
            "all {} checkpoint files are corrupt: {}",
            notes.len(),
            notes.join("; ")
        ),
    })
}

/// Result of a streaming run.
#[derive(Debug)]
pub struct StreamRun {
    /// The merged global state (over `merged_shards` shards).
    pub state: ShardState,
    /// Users in the population.
    pub users: usize,
    /// Total shards in the partition.
    pub shards: usize,
    /// Users per shard.
    pub shard_size: usize,
    /// Shards merged so far (`== shards` iff `completed`).
    pub merged_shards: usize,
    /// False only when the run stopped early via `abort_after_checkpoints`.
    pub completed: bool,
    /// `Some(next_shard)` when this run resumed from a checkpoint.
    pub resumed_from: Option<usize>,
    /// Corrupt checkpoint files skipped during resume (tagged, per file).
    pub fallback_notes: Vec<String>,
    /// Checkpoints written by this process.
    pub checkpoints_written: usize,
}

impl StreamRun {
    /// The Table 2-style report over the merged state.
    pub fn report(&self) -> StreamReport {
        StreamReport::build(&self.state)
    }

    /// FNV-1a fingerprint of the complete merged state (metric
    /// accumulators down to digest centroid bits, counts, failures,
    /// telemetry). Two runs are bit-identical iff their fingerprints
    /// match — the resume/thread-invariance batteries compare these.
    pub fn fingerprint(&self) -> u64 {
        let mut buf = Vec::new();
        self.state.encode(&mut buf);
        let mut h = Fnv::new();
        h.write(&buf);
        h.u64(self.shards as u64);
        h.u64(self.merged_shards as u64);
        h.finish()
    }
}

/// One row of the streaming report.
#[derive(Debug, Clone)]
pub struct StreamRow {
    /// Metric name, as in [`METRICS`].
    pub name: &'static str,
    /// How the per-arm statistic is aggregated.
    pub agg: Aggregate,
    /// Control-arm statistic (t-digest median or exact mean).
    pub control: f64,
    /// Treatment-arm statistic.
    pub treatment: f64,
    /// Percent change of the arm statistics.
    pub pct_change: f64,
    /// Paired per-session mean delta with bootstrap CI (exact mean;
    /// resolves sub-percent effects the quantile estimate can't).
    pub paired: PairedDelta,
    /// Control sessions with a value for this metric.
    pub control_count: u64,
    /// Treatment sessions with a value for this metric.
    pub treatment_count: u64,
}

/// The streaming analogue of [`crate::experiment::Report`].
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Rows in [`METRICS`] order.
    pub rows: Vec<StreamRow>,
    /// Users folded in.
    pub users: u64,
    /// Users that failed.
    pub failures: u64,
}

impl StreamReport {
    fn build(state: &ShardState) -> StreamReport {
        let rows = METRICS
            .iter()
            .zip(state.metrics())
            .map(|(&(name, agg, _), m)| {
                let stat = |s: &StreamingStat| match agg {
                    Aggregate::Median => s.median(),
                    Aggregate::Mean => s.mean(),
                };
                let control = stat(m.control());
                let treatment = stat(m.treatment());
                StreamRow {
                    name,
                    agg,
                    control,
                    treatment,
                    pct_change: pct_change(control, treatment),
                    paired: m.paired_delta(),
                    control_count: m.control().count(),
                    treatment_count: m.treatment().count(),
                }
            })
            .collect();
        StreamReport {
            rows,
            users: state.users,
            failures: state.failures,
        }
    }

    /// Look up a row by name.
    pub fn row(&self, name: &str) -> Option<&StreamRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>12} {:>12} {:>10} {:>28}\n",
            "Metric", "Control", "Treatment", "% Chg", "Paired mean [95% CI]"
        ));
        for r in &self.rows {
            let paired = if r.paired.mean_delta_pct.is_nan() {
                "n/a".to_string()
            } else if r.paired.significant() {
                format!(
                    "{:+.3}% [{:+.3}, {:+.3}]",
                    r.paired.mean_delta_pct, r.paired.ci_low, r.paired.ci_high
                )
            } else {
                format!("–  [{:+.3}, {:+.3}]", r.paired.ci_low, r.paired.ci_high)
            };
            let chg = if r.pct_change.is_nan() {
                "n/a".to_string()
            } else {
                format!("{:+.2}%", r.pct_change)
            };
            out.push_str(&format!(
                "{:<20} {:>12.4} {:>12.4} {:>10} {:>28}\n",
                r.name, r.control, r.treatment, chg, paired
            ));
        }
        out.push_str(&format!(
            "users: {}   failures: {}\n",
            self.users, self.failures
        ));
        out
    }
}

/// Run one shard: fold users `[shard·size, (shard+1)·size)` in index
/// order, isolating per-user panics exactly like the collecting runner.
fn compute_shard(
    population: &Population<'_>,
    shard: usize,
    shard_size: usize,
    control: Arm,
    treatment: Arm,
    cfg: &ExperimentConfig,
    reps: usize,
) -> ShardState {
    let mut state = ShardState::new(reps);
    let lo = shard * shard_size;
    let hi = ((shard + 1) * shard_size).min(population.len());
    for index in lo..hi {
        let user = population.get(index);
        // A panic leaves the user's partial registry in the worker's
        // thread-local; the next run_user_pair replaces it, so failed
        // users contribute no telemetry (same policy as the collecting
        // runner).
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_user_pair(&user, control, treatment, cfg)
        }));
        match result {
            Ok(((c, t), mut registry)) => {
                // Wall spans are wall-clock and therefore nondeterministic
                // by design (DESIGN.md §13); the shard state is part of the
                // bit-identity contract, so they stop here.
                registry.clear_wall_spans();
                state.fold_user(cfg.seed, user.id, &c, &t, &registry)
            }
            Err(payload) => state.record_failure(user.id, index as u64, panic_message(payload)),
        }
    }
    state
}

/// Append one progress line to the live JSONL tail. Every field is a
/// deterministic counter over the merged prefix; flushed per line so a
/// tailing reader never sees a torn record from a cooperative writer.
fn write_progress_line(
    f: &mut std::fs::File,
    merged: usize,
    shards: usize,
    global: &ShardState,
) -> Result<(), SimError> {
    use std::io::Write;
    let (control_sessions, treatment_sessions) = global
        .metrics()
        .first()
        .map(|m| (m.control().count(), m.treatment().count()))
        .unwrap_or((0, 0));
    let line = format!(
        "{{\"type\":\"progress\",\"shard\":{merged},\"shards\":{shards},\"users\":{},\"failures\":{},\"control_sessions\":{control_sessions},\"treatment_sessions\":{treatment_sessions}}}\n",
        global.users, global.failures,
    );
    f.write_all(line.as_bytes())
        .and_then(|()| f.flush())
        .map_err(|e| SimError::Io(format!("append progress line: {e}")))
}

/// Shared worker/merger coordination state.
struct Pending {
    /// Completed shards awaiting their turn, keyed by shard index.
    ready: BTreeMap<usize, ShardState>,
    /// Shards `0..merged_upto` are folded into the global state.
    merged_upto: usize,
    /// Set on error or requested abort; workers drain and exit.
    abort: bool,
}

/// The streaming shard-merge runner (entry:
/// [`crate::experiment::ExperimentBuilder::run_streaming`]).
pub(crate) fn run_stream_impl(
    population: &Population<'_>,
    control: Arm,
    treatment: Arm,
    cfg: &ExperimentConfig,
    stream: &StreamConfig,
) -> Result<StreamRun, SimError> {
    if stream.resume && stream.checkpoint_dir.is_none() {
        return Err(SimError::InvalidConfig {
            field: "resume",
            reason: "resume requires a checkpoint dir".into(),
        });
    }
    let users = population.len();
    let shard_size = stream.shard_size.max(1);
    let shards = users.div_ceil(shard_size);
    let reps = cfg.bootstrap_reps;
    let config_fp = config_fingerprint(population, control, treatment, cfg, shard_size);

    let mut global = ShardState::new(reps);
    let mut start_shard = 0usize;
    let mut resumed_from = None;
    let mut fallback_notes = Vec::new();
    if stream.resume {
        let dir = stream.checkpoint_dir.as_deref().expect("checked above");
        if let Some((state, next_shard, notes)) = resume_scan(dir, config_fp, reps)? {
            if next_shard > shards {
                return Err(SimError::Checkpoint {
                    path: dir.display().to_string(),
                    reason: format!(
                        "checkpoint covers {next_shard} shards but the run has {shards}"
                    ),
                });
            }
            global = state;
            start_shard = next_shard;
            resumed_from = Some(next_shard);
            fallback_notes = notes;
        }
    }

    let mut checkpoints_written = 0usize;
    let mut aborted = false;
    let mut merged_shards = start_shard;
    let mut progress = match stream.progress_path.as_deref() {
        Some(path) => Some(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| SimError::Io(format!("open progress log {path:?}: {e}")))?,
        ),
        None => None,
    };

    if start_shard < shards {
        let threads = cfg.effective_threads().min(shards - start_shard).max(1);
        let window = if stream.max_pending_shards == 0 {
            threads * 2
        } else {
            stream.max_pending_shards
        }
        .max(1);

        let next = AtomicUsize::new(start_shard);
        let pending = Mutex::new(Pending {
            ready: BTreeMap::new(),
            merged_upto: start_shard,
            abort: false,
        });
        let cv = Condvar::new();

        let merge_result: Result<(), SimError> = crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| loop {
                    let shard = next.fetch_add(1, Ordering::Relaxed);
                    if shard >= shards {
                        break;
                    }
                    {
                        // Backpressure: don't run further than `window`
                        // shards ahead of the merger.
                        let mut g = pending.lock().expect("stream lock");
                        while !g.abort && shard >= g.merged_upto + window {
                            g = cv.wait(g).expect("stream wait");
                        }
                        if g.abort {
                            break;
                        }
                    }
                    let state =
                        compute_shard(population, shard, shard_size, control, treatment, cfg, reps);
                    let mut g = pending.lock().expect("stream lock");
                    g.ready.insert(shard, state);
                    cv.notify_all();
                });
            }

            // Merge, in strict shard order, on this thread.
            let result = (|| -> Result<(), SimError> {
                for k in start_shard..shards {
                    let state = {
                        let mut g = pending.lock().expect("stream lock");
                        loop {
                            if let Some(st) = g.ready.remove(&k) {
                                break st;
                            }
                            g = cv.wait(g).expect("stream wait");
                        }
                    };
                    global.merge(&state);
                    merged_shards = k + 1;
                    if let Some(f) = progress.as_mut() {
                        write_progress_line(f, k + 1, shards, &global)?;
                    }
                    {
                        let mut g = pending.lock().expect("stream lock");
                        g.merged_upto = k + 1;
                        cv.notify_all();
                    }
                    if let Some(dir) = stream.checkpoint_dir.as_deref() {
                        let merged_here = k + 1 - start_shard;
                        let due = stream.checkpoint_every > 0
                            && merged_here.is_multiple_of(stream.checkpoint_every);
                        let last = k + 1 == shards;
                        if due || last {
                            write_checkpoint(
                                dir,
                                config_fp,
                                k + 1,
                                &global,
                                stream.keep_checkpoints,
                            )?;
                            checkpoints_written += 1;
                            if stream
                                .abort_after_checkpoints
                                .is_some_and(|n| checkpoints_written >= n)
                                && !last
                            {
                                aborted = true;
                                return Ok(());
                            }
                        }
                    }
                }
                Ok(())
            })();

            // Wake and drain every worker, whatever happened.
            let mut g = pending.lock().expect("stream lock");
            g.abort = true;
            cv.notify_all();
            drop(g);
            result
        })
        .expect("stream worker pool");
        merge_result?;
    }

    Ok(StreamRun {
        state: global,
        users,
        shards,
        shard_size,
        merged_shards,
        completed: !aborted,
        resumed_from,
        fallback_notes,
        checkpoints_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson1_has_unit_mean() {
        let n = 20_000u64;
        let total: u64 = (0..n).map(|i| poisson1(mix2(42, i))).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "Poisson(1) mean off: {mean}");
        // Deterministic per key.
        assert_eq!(poisson1(mix2(7, 9)), poisson1(mix2(7, 9)));
    }

    #[test]
    fn metric_acc_merge_is_exact_and_order_fixed() {
        // The guarantee under test is the runner's: a FIXED shard
        // partition merged in a FIXED order is bit-identical, whether or
        // not the merge passed through a checkpoint (encode/decode)
        // boundary partway. (A different partition gives a different —
        // equally valid — f64 summation order, which is why shard_size is
        // part of the run's identity.)
        let fold = |acc: &mut MetricAcc, users: std::ops::Range<u64>| {
            for u in users {
                let c = [10.0 + u as f64, 12.0];
                let t = [9.0 + u as f64, 11.5];
                acc.fold_user(mix2(1, u), &c, &t);
            }
        };
        let shards: Vec<MetricAcc> = (0..4)
            .map(|s| {
                let mut acc = MetricAcc::new(50);
                fold(&mut acc, s * 10..(s + 1) * 10);
                acc
            })
            .collect();

        // Path A: uninterrupted merge of all four shards.
        let mut a = MetricAcc::new(50);
        for s in &shards {
            a.merge(s);
        }
        // Path B: merge two, checkpoint (encode/decode), merge the rest.
        let mut b = MetricAcc::new(50);
        b.merge(&shards[0]);
        b.merge(&shards[1]);
        let mut buf = Vec::new();
        b.encode(&mut buf);
        let mut b = MetricAcc::decode(&mut Reader::new(&buf), 50).unwrap();
        b.merge(&shards[2]);
        b.merge(&shards[3]);

        assert_eq!(a.pairs(), b.pairs());
        assert_eq!(a.delta_sum.to_bits(), b.delta_sum.to_bits());
        assert_eq!(a.boot, b.boot);
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        a.encode(&mut ea);
        b.encode(&mut eb);
        assert_eq!(ea, eb, "resumed merge must be bit-identical");
        // Counts are exact regardless of path: 40 users × 2 sessions.
        assert_eq!(a.pairs(), 80);
        assert_eq!(a.control().count(), 80);
    }

    #[test]
    fn shard_state_round_trips_bit_exact() {
        let mut st = ShardState::new(20);
        for u in 0..30u64 {
            let vals: Vec<f64> = (0..3).map(|s| (u * 3 + s) as f64 * 0.25 + 1.0).collect();
            let tvals: Vec<f64> = vals.iter().map(|v| v * 0.9).collect();
            for m in st.metrics.iter_mut() {
                m.fold_user(mix2(3, u), &vals, &tvals);
            }
            st.users += 1;
        }
        st.record_failure(99, 99, "boom".into());
        let mut buf = Vec::new();
        st.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let back = ShardState::decode(&mut r, 20).unwrap();
        assert!(r.is_done());
        let mut buf2 = Vec::new();
        back.encode(&mut buf2);
        assert_eq!(buf, buf2, "decode/encode must be bit-exact");
        assert_eq!(back.failure_samples, st.failure_samples);
    }

    #[test]
    fn checkpoint_write_load_and_corruption() {
        let dir = std::env::temp_dir().join(format!("sammy-ckpt-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = ShardState::new(5);
        write_checkpoint(&dir, 0xFEED, 3, &state, 2).unwrap();
        let path = checkpoint_path(&dir, 3);
        let (_, next_shard) = load_checkpoint(&path, 0xFEED, 5).unwrap();
        assert_eq!(next_shard, 3);

        // Wrong config is a mismatch, not corruption.
        assert!(matches!(
            load_checkpoint(&path, 0xBEEF, 5),
            Err(CkptReject::ConfigMismatch)
        ));

        // Any flipped byte (including inside the checksum) is corruption.
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[cut] ^= 0xFF;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                matches!(
                    load_checkpoint(&path, 0xFEED, 5),
                    Err(CkptReject::Corrupt(_))
                ),
                "flipped byte {cut} must be detected"
            );
        }
        // Truncation too.
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        assert!(matches!(
            load_checkpoint(&path, 0xFEED, 5),
            Err(CkptReject::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_pruning_keeps_newest() {
        let dir = std::env::temp_dir().join(format!("sammy-ckpt-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = ShardState::new(2);
        for k in 1..=5 {
            write_checkpoint(&dir, 1, k, &state, 2).unwrap();
        }
        let files = list_checkpoints(&dir).unwrap();
        let shards: Vec<usize> = files.iter().map(|&(_, s)| s).collect();
        assert_eq!(shards, vec![4, 5]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
