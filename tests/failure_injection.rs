//! Failure-injection tests: sudden capacity changes mid-session. The
//! adaptive stack (MPC + Sammy) must degrade gracefully — downshift rungs,
//! keep rebuffers bounded — and recover when capacity returns.

use sammy_repro::abr::{shared_history, HistoryPolicy, Mpc, ProductionAbr};
use sammy_repro::netsim::{
    Dumbbell, DumbbellConfig, FlowId, Rate, SimDuration, SimTime, Simulator,
};
use sammy_repro::sammy_core::{Sammy, SammyConfig};
use sammy_repro::transport::{SenderEndpoint, TcpConfig};
use sammy_repro::video::{
    Abr, Ladder, Player, PlayerConfig, PlayerState, Title, TitleConfig, VideoClientEndpoint,
    VmafModel,
};
use std::sync::Arc;

fn warmed_history() -> sammy_repro::abr::SharedHistory {
    let h = shared_history();
    for _ in 0..20 {
        h.update(Rate::from_mbps(38.0));
        h.end_session();
    }
    h
}

struct Outcome {
    state: PlayerState,
    rebuffers: u64,
    rebuffer_secs: f64,
    mean_bitrate_mbps: f64,
    switches: u64,
    played_secs: f64,
    /// Rung of each completed chunk, in request order.
    rungs: Vec<usize>,
}

/// Stream a 4-minute title while the bottleneck drops from 40 Mbps to
/// `dip_mbps` during [60 s, 120 s].
fn run_with_dip(abr: Box<dyn Abr>, dip_mbps: f64) -> Outcome {
    let mut sim = Simulator::new();
    let db = Dumbbell::build(&mut sim, DumbbellConfig::default());
    let flow = FlowId(1);
    sim.set_endpoint(
        db.left[0],
        Box::new(SenderEndpoint::new(
            db.left[0],
            db.right[0],
            flow,
            TcpConfig {
                max_burst_packets: 4,
                ..Default::default()
            },
        )),
    );
    let title = Arc::new(Title::generate(
        Ladder::lab(&VmafModel::standard()),
        &TitleConfig {
            duration: SimDuration::from_secs(240),
            chunk_duration: SimDuration::from_secs(4),
            size_cv: 0.1,
            vmaf_sd: 0.0,
            seed: 5,
        },
    ));
    let player = Player::new(
        title,
        abr,
        PlayerConfig {
            // Small buffer so the dip actually bites.
            max_buffer: SimDuration::from_secs(30),
            start_threshold: SimDuration::from_secs(8),
            resume_threshold: SimDuration::from_secs(8),
        },
        SimTime::ZERO,
    );
    VideoClientEndpoint::new(db.right[0], db.left[0], flow, player)
        .install(&mut sim, SimTime::ZERO);

    sim.run_until(SimTime::from_secs(60));
    sim.set_link_rate(db.forward, Rate::from_mbps(dip_mbps));
    sim.run_until(SimTime::from_secs(120));
    sim.set_link_rate(db.forward, Rate::from_mbps(40.0));
    sim.run_until(SimTime::from_secs(400));

    let client: &mut VideoClientEndpoint = sim.endpoint_mut(db.right[0]).unwrap();
    let q = client.player().qoe();
    Outcome {
        state: client.player().state(),
        rebuffers: q.rebuffer_count,
        rebuffer_secs: q.rebuffer_time.as_secs_f64(),
        mean_bitrate_mbps: q.mean_bitrate.map(|r| r.mbps()).unwrap_or(0.0),
        switches: q.quality_switches,
        played_secs: q.played.as_secs_f64(),
        rungs: client
            .completed_chunks
            .iter()
            .map(|(req, _)| req.rung)
            .collect(),
    }
}

fn production() -> Box<dyn Abr> {
    Box::new(ProductionAbr::new(
        Mpc::default(),
        warmed_history(),
        HistoryPolicy::AllSamples,
    ))
}

fn sammy() -> Box<dyn Abr> {
    Box::new(Sammy::new(
        Mpc::default(),
        warmed_history(),
        SammyConfig::default(),
    ))
}

#[test]
fn mild_dip_absorbed_by_buffer_and_adaptation() {
    // Dip to 2 Mbps (below the 3.3 Mbps top rung, above lower rungs): the
    // session must adapt down rather than stall, and finish the title.
    for abr in [production(), sammy()] {
        let o = run_with_dip(abr, 2.0);
        assert_eq!(o.state, PlayerState::Ended);
        assert_eq!(o.played_secs, 240.0);
        assert!(o.rebuffers <= 1, "rebuffers {}", o.rebuffers);
        // Adaptation happened: some switches, mean bitrate below top.
        assert!(o.switches >= 1, "expected downshifts");
        assert!(o.mean_bitrate_mbps < 3.3);
    }
}

#[test]
fn severe_dip_recovers_after_restoration() {
    // Dip to 0.4 Mbps (barely above the lowest rung): heavy stress, but the
    // session must still finish once capacity returns, with bounded stalls.
    for abr in [production(), sammy()] {
        let o = run_with_dip(abr, 0.4);
        assert_eq!(o.state, PlayerState::Ended, "session must finish");
        assert_eq!(o.played_secs, 240.0);
        // Stalls are allowed, but bounded by roughly the dip length.
        assert!(o.rebuffer_secs < 70.0, "stalled {}s", o.rebuffer_secs);
    }
}

#[test]
fn abr_recovers_to_pre_dip_quality_after_restoration() {
    // Not just "rebuffers stay bounded during the dip": once capacity
    // returns to 40 Mbps at t = 120 s, the ABR must climb back to within
    // one ladder rung of its pre-dip quality by the end of the title.
    for name in ["production", "sammy"] {
        for dip_mbps in [2.0, 0.4] {
            let o = run_with_dip(abr_by_name(name), dip_mbps);
            assert_eq!(o.state, PlayerState::Ended, "{name} dip {dip_mbps}");
            // Pre-dip steady state: the best rung reached in the first ten
            // chunks (all requested well before the 60 s dip).
            let pre_dip = *o.rungs[..10].iter().max().expect("pre-dip chunks");
            // The dip forced a downshift — otherwise this test is vacuous.
            let during_min = *o.rungs.iter().min().unwrap();
            assert!(
                during_min < pre_dip,
                "{name} dip {dip_mbps}: no downshift observed (rungs {:?})",
                o.rungs
            );
            // Recovery: every one of the final five chunks is back within
            // one rung of the pre-dip level.
            let tail = &o.rungs[o.rungs.len() - 5..];
            for (i, &r) in tail.iter().enumerate() {
                assert!(
                    r + 1 >= pre_dip,
                    "{name} dip {dip_mbps}: tail chunk {i} at rung {r}, \
                     pre-dip {pre_dip} (tail {tail:?})"
                );
            }
        }
    }
}

fn abr_by_name(name: &str) -> Box<dyn Abr> {
    match name {
        "production" => production(),
        _ => sammy(),
    }
}

#[test]
fn worker_panic_is_isolated_and_reported() {
    use sammy_repro::abtest::{
        draw_population, Arm, Experiment, ExperimentConfig, PopulationConfig,
    };
    use sammy_repro::netsim::SimError;

    let cfg = ExperimentConfig {
        users_per_arm: 10,
        pre_sessions: 1,
        sessions_per_user: 2,
        seed: 13,
        bootstrap_reps: 50,
        threads: 4,
    };
    let treatment = Arm::Sammy { c0: 3.2, c1: 2.8 };
    let mut pop = draw_population(&PopulationConfig::default(), cfg.users_per_arm, cfg.seed);
    // Sabotage one user mid-population: a title shorter than one chunk
    // trips `Title::generate`'s assertion inside that user's worker.
    pop[4].title_duration = SimDuration::from_secs(1);

    let run = Experiment::builder()
        .population(&pop)
        .treatment(treatment)
        .config(cfg.clone())
        .detailed(true)
        .run()
        .unwrap();

    // Exactly the sabotaged user failed, with the panic payload captured.
    assert_eq!(run.failures.len(), 1, "failures: {:?}", run.failures);
    assert_eq!(run.failures[0].index, 4);
    assert_eq!(run.failures[0].user, pop[4].id);
    assert!(
        run.failures[0].message.contains("chunk"),
        "unexpected payload: {}",
        run.failures[0].message
    );

    // The pool neither deadlocked nor dropped the other nine users: their
    // records match a clean run of the population without the bad user.
    let healthy: Vec<_> = pop
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 4)
        .map(|(_, u)| u.clone())
        .collect();
    let clean = Experiment::builder()
        .population(&healthy)
        .treatment(treatment)
        .config(cfg.clone())
        .serial_reference(true)
        .run()
        .unwrap();
    assert!(
        run.control.sessions == clean.control.sessions,
        "surviving control records diverged"
    );
    assert!(
        run.treatment.sessions == clean.treatment.sessions,
        "surviving treatment records diverged"
    );

    // The strict (non-detailed) builder surfaces the same failure as an
    // error instead of returning a silently incomplete experiment.
    let err = Experiment::builder()
        .population(&pop)
        .treatment(treatment)
        .config(cfg.clone())
        .run()
        .unwrap_err();
    assert!(
        matches!(err, SimError::Experiment(ref m) if m.contains("chunk")),
        "unexpected error: {err}"
    );
}

#[test]
fn sammy_dip_behaviour_no_worse_than_production() {
    // The paper's safety claim, exercised under failure: pacing must not
    // make the session more fragile than the unpaced control.
    let control = run_with_dip(production(), 1.0);
    let paced = run_with_dip(sammy(), 1.0);
    assert_eq!(paced.state, PlayerState::Ended);
    assert!(
        paced.rebuffer_secs <= control.rebuffer_secs + 10.0,
        "sammy stalled {}s vs control {}s",
        paced.rebuffer_secs,
        control.rebuffer_secs
    );
}
