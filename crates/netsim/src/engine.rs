//! The discrete-event simulation engine.
//!
//! The engine owns the topology (nodes and links), an event queue ordered by
//! `(time, insertion sequence)` for full determinism, and one optional
//! [`Endpoint`] per node. Protocol logic (TCP, UDP probes, video players)
//! lives in endpoints; the engine only moves packets and fires timers.
//!
//! Event flow for a packet: an endpoint emits it via [`NodeCtx::send`]; the
//! engine looks up the next-hop link in the node's routing table and enqueues
//! it. When the link is idle it serializes the head-of-line packet
//! (`LinkTxDone` event), then delivers it to the far end after the
//! propagation delay (`PacketArrive` event). Arriving packets at their
//! destination are handed to that node's endpoint; at intermediate nodes they
//! are forwarded onward.
//!
//! ## Hot-path layout
//!
//! The event loop is allocation-free in steady state: endpoint callbacks
//! write into scratch buffers owned by the simulator (reused across events),
//! routing tables and per-link/per-flow state are dense vectors indexed by
//! the id newtypes, and endpoint timers — the dominant event class under
//! pacing — live in a hierarchical timer wheel (`timerwheel`) instead of the
//! packet event heap. Timers and packet events draw `seq` from one global
//! counter, so the merged dispatch order is exactly the historical single-
//! heap `(at, seq)` order.

use crate::link::{Link, LinkConfig, TxStart};
use crate::packet::{FlowId, LinkId, NodeId, Packet, PacketId, PacketRef, PacketStore};
use crate::queue::{EnqueueResult, TrainStop};
use crate::time::SimDuration;
use crate::time::SimTime;
use crate::timerwheel::TimerWheel;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Protocol logic attached to a node.
///
/// Implementations receive arriving packets and expired timers, and react by
/// emitting packets and arming timers through the [`NodeCtx`].
pub trait Endpoint {
    /// A packet addressed to this node arrived.
    fn on_packet(&mut self, now: SimTime, pkt: Packet, ctx: &mut NodeCtx);

    /// A timer armed with [`NodeCtx::set_timer`] expired. `token` is the
    /// value passed when arming.
    fn on_timer(&mut self, now: SimTime, token: u64, ctx: &mut NodeCtx);

    /// Downcast hook so experiments can inspect endpoint state after a run
    /// via [`Simulator::endpoint_mut`]. Implementations return `self`.
    fn as_any(&mut self) -> &mut dyn std::any::Any;
}

/// The interface an [`Endpoint`] uses to act on the network.
///
/// Borrows the simulator's scratch buffers for the duration of one callback;
/// nothing is allocated per event.
pub struct NodeCtx<'a> {
    node: NodeId,
    out: &'a mut Vec<Packet>,
    timers: &'a mut Vec<(SimTime, u64)>,
}

impl NodeCtx<'_> {
    /// The node this context belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Emit a packet. The engine routes it from this node toward `pkt.dst`.
    pub fn send(&mut self, pkt: Packet) {
        self.out.push(pkt);
    }

    /// Arm a timer to fire at absolute time `at` with the given token.
    /// Timers are not cancellable; endpoints must ignore stale tokens.
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        self.timers.push((at, token));
    }
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    /// The link finished serializing its in-flight packet.
    LinkTxDone(LinkId),
    /// A non-work-conserving queue (token-bucket shaper) asked to be
    /// re-polled at this time: enough tokens will have accrued to release
    /// the head-of-line packet.
    LinkWake(LinkId),
    /// A packet reached the node at the far end of its last link. The
    /// packet's fields live in the simulator's [`PacketStore`]; the event
    /// carries only its dense id, so heap sifts move small events, never
    /// the ~90-byte packet struct.
    PacketArrive(NodeId, PacketId),
}

#[derive(Debug, Clone, Copy)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

// Every comparison trait keys on `(at, seq)` alone — the payload must never
// influence queue order (or equality), and `seq` is globally unique so the
// order is total and deterministic.
impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Node {
    /// Next-hop link per destination, indexed by `NodeId` (dense; `None`
    /// where no route is installed).
    routes: Vec<Option<LinkId>>,
    endpoint: Option<Box<dyn Endpoint>>,
}

/// Per-flow delivery statistics maintained by the engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowStats {
    /// Bytes delivered to the destination node (wire bytes, incl. headers).
    pub delivered_bytes: u64,
    /// Packets delivered to the destination node.
    pub delivered_packets: u64,
    /// Packets of this flow dropped at any queue.
    pub dropped_packets: u64,
    /// Bytes of this flow dropped at any queue.
    pub dropped_bytes: u64,
    /// Packets this flow's sources handed to the network (first hop only;
    /// forwarding at intermediate nodes does not re-count).
    pub injected_packets: u64,
    /// Bytes this flow's sources handed to the network.
    pub injected_bytes: u64,
}

/// Flow ids below this index live in the dense stats table; anything larger
/// (experiments occasionally grind through synthetic id spaces) falls back to
/// a hash map so the table cannot balloon.
const DENSE_FLOWS: u64 = 4096;

/// Upper bound on packets pulled per [`Queue::dequeue_train`] call: bounds
/// the per-call latency and the slack term in the train byte budget.
///
/// [`Queue::dequeue_train`]: crate::queue::Queue::dequeue_train
const MAX_TRAIN: u64 = 64;

/// Consecutive fusion misses on a link before the engine stops paying for
/// the window/budget computation on it (see the gate in `handle_tx_done`).
const FUSE_PROBE_AFTER: u32 = 8;

/// Gated completions between fusion re-probes, so a link that becomes
/// fusible (queue composition or timer pattern changed) is re-detected.
const FUSE_REPROBE_EVERY: u32 = 256;

/// Padding subtracted from a train's serialization window before converting
/// it to a byte budget: each per-packet `time_to_send` can round up by a
/// nanosecond, so a train of up to [`MAX_TRAIN`] packets needs this much
/// headroom for the cumulative completion times to provably stay inside
/// the window.
const TRAIN_SLACK: SimDuration = SimDuration::from_nanos(MAX_TRAIN + 2);

/// The error returned by [`Simulator::run_with_budget`] when the event
/// budget is exhausted before the queue drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Total events processed by the simulator when the budget ran out.
    pub processed_events: u64,
    /// Simulated time reached when the budget ran out.
    pub at: SimTime,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event budget exceeded at t={:?} after {} events",
            self.at, self.processed_events
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// The discrete-event network simulator.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    /// Packet events (`LinkTxDone`, `PacketArrive`).
    events: BinaryHeap<Reverse<Event>>,
    /// Endpoint timers; shares the `seq` counter with `events` so the merged
    /// dispatch order equals the historical single-heap order.
    timers: TimerWheel,
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Packet currently being serialized on each link, indexed by `LinkId`.
    in_flight: Vec<Option<PacketRef>>,
    /// Struct-of-arrays storage for every packet currently inside the
    /// network (queued, serializing, or propagating). The hot loop moves
    /// 16-byte [`PacketRef`]s; full packets are materialized only at final
    /// delivery. Id reuse follows event order, so it is deterministic.
    store: PacketStore,
    /// Dense per-flow stats indexed by `FlowId` (ids < `DENSE_FLOWS`).
    flow_stats: Vec<FlowStats>,
    /// Fallback for out-of-range flow ids.
    flow_stats_overflow: HashMap<FlowId, FlowStats>,
    processed_events: u64,
    /// Scratch buffers lent to endpoint callbacks via [`NodeCtx`]; drained
    /// after every callback, so capacity is reused run-long.
    scratch_out: Vec<Packet>,
    scratch_timers: Vec<(SimTime, u64)>,
    /// Scratch buffer for AQM head-drops surfaced by `Queue::dequeue`.
    scratch_dropped: Vec<PacketRef>,
    /// Scratch buffer for pre-pulled packet trains (`Link::start_train`).
    scratch_train: Vec<(PacketRef, SimTime)>,
    /// `(at, seq)` of the most recently dispatched event (validate feature):
    /// dispatch keys must be strictly increasing across the heap/wheel merge.
    #[cfg(feature = "validate")]
    last_dispatch: Option<(SimTime, u64)>,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Create an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            timers: TimerWheel::new(),
            nodes: Vec::new(),
            links: Vec::new(),
            in_flight: Vec::new(),
            store: PacketStore::new(),
            flow_stats: Vec::new(),
            flow_stats_overflow: HashMap::new(),
            processed_events: 0,
            scratch_out: Vec::new(),
            scratch_timers: Vec::new(),
            scratch_dropped: Vec::new(),
            scratch_train: Vec::new(),
            #[cfg(feature = "validate")]
            last_dispatch: None,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn processed_events(&self) -> u64 {
        self.processed_events
    }

    /// Add a node (initially a pure router with no endpoint).
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            routes: Vec::new(),
            endpoint: None,
        });
        id
    }

    /// Attach protocol logic to a node.
    ///
    /// # Panics
    /// Panics if the node already has an endpoint.
    pub fn set_endpoint(&mut self, node: NodeId, ep: Box<dyn Endpoint>) {
        let slot = &mut self.nodes[node.0].endpoint;
        assert!(slot.is_none(), "node {node:?} already has an endpoint");
        *slot = Some(ep);
    }

    /// Take a node's endpoint out of the simulator (e.g. to inspect its
    /// state after a run). Timers and packets for the node are silently
    /// dropped while the endpoint is absent.
    pub fn take_endpoint(&mut self, node: NodeId) -> Option<Box<dyn Endpoint>> {
        self.nodes[node.0].endpoint.take()
    }

    /// Borrow a node's endpoint downcast to its concrete type.
    ///
    /// Returns `None` if the node has no endpoint or it is of a different
    /// type.
    pub fn endpoint_mut<T: Endpoint + 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        self.nodes[node.0]
            .endpoint
            .as_mut()
            .and_then(|ep| ep.as_any().downcast_mut::<T>())
    }

    /// Add a unidirectional link and return its id.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) -> LinkId {
        assert!(
            src.0 < self.nodes.len() && dst.0 < self.nodes.len(),
            "unknown node"
        );
        let id = LinkId(self.links.len());
        self.links.push(Link::new(src, dst, cfg));
        self.in_flight.push(None);
        id
    }

    /// Add a bidirectional connection as two symmetric links.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        (self.add_link(a, b, cfg), self.add_link(b, a, cfg))
    }

    /// Install a route: packets at `at` destined for `dst` take `via`.
    ///
    /// # Panics
    /// Panics if `via` does not originate at `at`.
    pub fn add_route(&mut self, at: NodeId, dst: NodeId, via: LinkId) {
        assert_eq!(
            self.links[via.0].src, at,
            "route via a link not at this node"
        );
        let routes = &mut self.nodes[at.0].routes;
        if routes.len() <= dst.0 {
            routes.resize(dst.0 + 1, None);
        }
        routes[dst.0] = Some(via);
    }

    /// Immutable access to a link (for reading counters and queue state).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Mutable access to a link (e.g. to reset measurement high-water
    /// marks between experiment phases).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0]
    }

    /// Change a link's line rate mid-run (failure injection, diurnal
    /// capacity models). The packet currently being serialized finishes at
    /// the old rate; queued packets serialize at the new rate.
    pub fn set_link_rate(&mut self, id: LinkId, rate: crate::units::Rate) {
        self.links[id.0].rate = rate;
    }

    /// Number of links in the topology.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Delivery statistics for a flow (zeros if the flow never delivered).
    pub fn flow_stats(&self, flow: FlowId) -> FlowStats {
        if flow.0 < DENSE_FLOWS {
            self.flow_stats
                .get(flow.0 as usize)
                .copied()
                .unwrap_or_default()
        } else {
            self.flow_stats_overflow
                .get(&flow)
                .copied()
                .unwrap_or_default()
        }
    }

    fn flow_stats_mut(&mut self, flow: FlowId) -> &mut FlowStats {
        if flow.0 < DENSE_FLOWS {
            let i = flow.0 as usize;
            if self.flow_stats.len() <= i {
                self.flow_stats.resize(i + 1, FlowStats::default());
            }
            &mut self.flow_stats[i]
        } else {
            self.flow_stats_overflow.entry(flow).or_default()
        }
    }

    /// Inject a packet into the network from `from` at the current time, as
    /// if an endpoint at that node had sent it.
    pub fn inject(&mut self, from: NodeId, mut pkt: Packet) {
        pkt.sent_at = self.now;
        let st = self.flow_stats_mut(pkt.flow);
        st.injected_packets += 1;
        st.injected_bytes += pkt.size;
        let dst = pkt.dst;
        let pref = self.store.insert(pkt);
        self.route_packet(from, dst, pref);
    }

    /// Arm a timer for a node's endpoint from outside the endpoint (used to
    /// bootstrap protocols: e.g. fire token 0 at t=0 to start a flow).
    pub fn start_timer(&mut self, node: NodeId, at: SimTime, token: u64) {
        self.push_timer(at, node, token);
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let ev = Event {
            at,
            seq: self.seq,
            kind,
        };
        self.seq += 1;
        self.events.push(Reverse(ev));
    }

    fn push_timer(&mut self, at: SimTime, node: NodeId, token: u64) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        self.timers.insert(at, seq, node, token);
    }

    /// Route a packet leaving `from` toward `dst`: pick the next hop and
    /// enqueue it. A dropped packet's store id is freed here.
    fn route_packet(&mut self, from: NodeId, dst: NodeId, pkt: PacketRef) {
        let Some(via) = self.nodes[from.0].routes.get(dst.0).copied().flatten() else {
            panic!("no route from {from:?} to {dst:?}");
        };
        let now = self.now;
        let link = &mut self.links[via.0];
        match link.enqueue(now, pkt) {
            EnqueueResult::Accepted => {
                obs::observe!(
                    "netsim.link.queue_depth_bytes",
                    link.queue.occupied_bytes() as f64
                );
                if !link.busy {
                    self.kick_link(via);
                }
            }
            EnqueueResult::Dropped => {
                obs::counter!("netsim.link.drops", 1);
                obs::trace_event!(LinkDrop, self.now.as_nanos(), pkt.flow.0, pkt.size);
                let st = self.flow_stats_mut(pkt.flow);
                st.dropped_packets += 1;
                st.dropped_bytes += pkt.size;
                self.store.discard(pkt.id);
            }
        }
    }

    /// Start serializing the next eligible packet on an idle link. AQM
    /// head-drops are accounted here; a shaper's `Wait` schedules a
    /// deduplicated `LinkWake`.
    fn kick_link(&mut self, id: LinkId) {
        let now = self.now;
        let mut dropped = std::mem::take(&mut self.scratch_dropped);
        match self.links[id.0].start_transmission(now, &mut dropped) {
            TxStart::Started { pkt, done } => {
                self.in_flight[id.0] = Some(pkt);
                self.push_event(done, EventKind::LinkTxDone(id));
            }
            TxStart::Wait(at) => {
                // Never wake in the past/present (a stale Wait would spin),
                // and skip if an earlier-or-equal wake is already pending.
                let at = at.max(now + SimDuration::from_nanos(1));
                let pending = self.links[id.0].wake_at;
                if pending.is_none_or(|w| w <= now || at < w) {
                    self.links[id.0].wake_at = Some(at);
                    self.push_event(at, EventKind::LinkWake(id));
                }
            }
            TxStart::Idle => {}
        }
        if !dropped.is_empty() {
            self.account_head_drops(&mut dropped);
        }
        self.scratch_dropped = dropped;
    }

    /// Account AQM head-drops surfaced by a dequeue and free their ids.
    fn account_head_drops(&mut self, dropped: &mut Vec<PacketRef>) {
        let now = self.now;
        for pkt in dropped.drain(..) {
            obs::counter!("netsim.link.drops", 1);
            obs::trace_event!(LinkDrop, now.as_nanos(), pkt.flow.0, pkt.size);
            let _ = now;
            let st = self.flow_stats_mut(pkt.flow);
            st.dropped_packets += 1;
            st.dropped_bytes += pkt.size;
            self.store.discard(pkt.id);
        }
    }

    /// Run one event. Returns `false` if the queue is empty.
    ///
    /// The public single-step never fuses transmission completions (the
    /// horizon is the current clock), so external observers see exactly one
    /// dispatched event per call.
    pub fn step(&mut self) -> bool {
        let horizon = self.now;
        self.step_inner(horizon, u64::MAX)
    }

    /// Run one event, allowing `LinkTxDone` fusion up to `fuse_horizon`
    /// (inclusive) while staying under the `limit` on `processed_events`.
    /// Fused completions consume sequence numbers and event-budget slots
    /// exactly as heap-dispatched ones would, so the observable schedule is
    /// byte-identical to the unfused engine.
    fn step_inner(&mut self, fuse_horizon: SimTime, limit: u64) -> bool {
        // Merge the packet heap and the timer wheel by (at, seq): both draw
        // seq from the same counter, so the pair is unique and the merged
        // order is the historical single-queue order.
        let packet_key = self.events.peek().map(|&Reverse(e)| (e.at, e.seq));
        let timer_key = self.timers.peek_key();
        let take_timer = match (packet_key, timer_key) {
            (None, None) => return false,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(p), Some(t)) => t < p,
        };
        obs::counter!("netsim.engine.events", 1);
        if take_timer {
            let e = self.timers.pop().expect("peeked entry vanished");
            // Tagged invariant first: under `validate` a backwards clock
            // must surface as [dispatch-order], not a bare debug_assert.
            self.check_dispatch(e.at, e.seq);
            debug_assert!(e.at >= self.now, "time went backwards");
            self.now = e.at;
            self.processed_events += 1;
            self.dispatch_timer(e.node, e.token);
        } else {
            let Reverse(ev) = self.events.pop().expect("peeked event vanished");
            self.check_dispatch(ev.at, ev.seq);
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            self.processed_events += 1;
            match ev.kind {
                EventKind::LinkTxDone(id) => self.handle_tx_done(id, fuse_horizon, limit),
                EventKind::PacketArrive(node, pid) => self.deliver(node, pid),
                EventKind::LinkWake(id) => {
                    let link = &mut self.links[id.0];
                    if link.wake_at.is_some_and(|w| w <= self.now) {
                        link.wake_at = None;
                    }
                    self.kick_link(id);
                }
            }
        }
        true
    }

    /// Handle a `LinkTxDone` for `id` at the current clock, fusing the
    /// back-to-back completions that follow it whenever no other event can
    /// interleave.
    ///
    /// Correctness argument: the serialization window is bounded above by
    /// `min(heap top, wheel top, fuse_horizon + 1ns)` computed *after*
    /// pushing the finished packet's arrival, so the window never exceeds
    /// `now + delay`. Every arrival pushed while fusing lands at
    /// `done_i + delay > now + delay >= window`, no endpoint code runs, and
    /// the train byte budget keeps every cumulative completion time inside
    /// the window — hence nothing the baseline engine would dispatch can
    /// fall between two fused completions, and the dispatch order (and seq
    /// assignment) is exactly the unfused order.
    fn handle_tx_done(&mut self, id: LinkId, fuse_horizon: SimTime, limit: u64) {
        let lid = id.0;
        // `scratch_train`/`scratch_dropped` are used in place (no take/put
        // dance): nothing called below re-enters them — fusion runs no
        // endpoint code, and `account_head_drops` only touches stats and
        // the store. Elements are `Copy`, so reads copy out before `&mut
        // self` calls.
        let mut train_next = usize::MAX; // force a fresh pull first time
        loop {
            // The link just finished serializing `in_flight[lid]` at `now`.
            let pkt = self.in_flight[lid]
                .take()
                .expect("LinkTxDone with no packet in flight");
            let (delay, dst) = {
                let link = &mut self.links[lid];
                link.finish_transmission(&pkt);
                (link.delay, link.dst)
            };
            self.push_event(self.now + delay, EventKind::PacketArrive(dst, pkt.id));

            // Continue a pre-pulled train: the byte budget proved every
            // completion in it is fusible.
            if train_next < self.scratch_train.len() {
                let (next, done) = self.scratch_train[train_next];
                train_next += 1;
                self.links[lid].resume_train();
                self.in_flight[lid] = Some(next);
                self.fuse_tx_done(done);
                continue;
            }
            self.scratch_train.clear();

            // Fast path: nothing queued means no train and no wake (a
            // shaper only returns `Wait` when packets are held back), so
            // skip the window/budget computation entirely. This is the
            // common case for ACK-clocked or paced senders.
            if self.links[lid].queue.is_empty() {
                break;
            }

            // Fusion gate. Fusing and not fusing produce the identical
            // observable schedule (same seq consumption, same dispatch
            // order), so gating is purely a cost decision: a link whose
            // propagation delay undercuts its per-packet serialization
            // time (so the head's own arrival always cuts the window)
            // misses on every pull. After enough consecutive misses the
            // engine takes the plain single-packet path and only re-probes
            // every `FUSE_REPROBE_EVERY` completions.
            let misses = self.links[lid].fuse_misses;
            if (FUSE_PROBE_AFTER..FUSE_PROBE_AFTER + FUSE_REPROBE_EVERY).contains(&misses) {
                self.links[lid].fuse_misses = misses + 1;
                self.kick_link(id);
                break;
            }

            // Pull a fresh train. `window` is the earliest instant any
            // other pending work could run (the arrival just pushed is
            // already in the heap, so window <= now + delay).
            let heap_at = self.events.peek().map(|&Reverse(e)| e.at);
            let wheel_at = self.timers.peek_key().map(|(at, _)| at);
            let mut window = match (heap_at, wheel_at) {
                (None, None) => SimTime::MAX,
                (Some(p), None) => p,
                (None, Some(t)) => t,
                (Some(p), Some(t)) => p.min(t),
            };
            window = window.min(fuse_horizon + SimDuration::from_nanos(1));
            let slots = limit.saturating_sub(self.processed_events).min(MAX_TRAIN);
            let max_packets = slots.max(1) as usize;
            let max_bytes = if window > self.now + TRAIN_SLACK {
                self.links[lid]
                    .rate
                    .bytes_in(window - (self.now + TRAIN_SLACK))
            } else {
                0
            };
            let link = &mut self.links[lid];
            let stop = link.start_train(
                self.now,
                max_packets,
                max_bytes,
                &mut self.scratch_train,
                &mut self.scratch_dropped,
            );
            if !self.scratch_dropped.is_empty() {
                let mut dropped = std::mem::take(&mut self.scratch_dropped);
                self.account_head_drops(&mut dropped);
                self.scratch_dropped = dropped;
            }
            match self.scratch_train.first().copied() {
                Some((first, done)) => {
                    self.in_flight[lid] = Some(first);
                    train_next = 1;
                    if done < window && self.processed_events < limit {
                        self.links[lid].fuse_misses = 0;
                        self.fuse_tx_done(done);
                        continue;
                    }
                    // Miss: count it; a failed re-probe (misses already
                    // past the gate window) goes straight back to the
                    // gated regime rather than re-running full attempts.
                    self.links[lid].fuse_misses = if misses >= FUSE_PROBE_AFTER {
                        FUSE_PROBE_AFTER
                    } else {
                        misses + 1
                    };
                    // Only a budget-exempt head can land outside the
                    // window, and then it is the train's sole packet.
                    debug_assert_eq!(self.scratch_train.len(), 1);
                    self.push_event(done, EventKind::LinkTxDone(id));
                }
                None => {
                    if let TrainStop::Wait(at) = stop {
                        let at = at.max(self.now + SimDuration::from_nanos(1));
                        let pending = self.links[lid].wake_at;
                        if pending.is_none_or(|w| w <= self.now || at < w) {
                            self.links[lid].wake_at = Some(at);
                            self.push_event(at, EventKind::LinkWake(id));
                        }
                    }
                }
            }
            break;
        }
        self.scratch_train.clear();
    }

    /// Bookkeeping for a fused `LinkTxDone`: consume the sequence number
    /// the heap push would have taken and advance the clock/accounting
    /// exactly as a dispatched event would.
    fn fuse_tx_done(&mut self, done: SimTime) {
        let seq = self.seq;
        self.seq += 1;
        obs::counter!("netsim.engine.events", 1);
        self.check_dispatch(done, seq);
        debug_assert!(done >= self.now, "time went backwards");
        self.now = done;
        self.processed_events += 1;
    }

    /// Dispatch-order invariant: the clock never runs backwards and the
    /// merged heap/wheel stream dispatches in strictly increasing
    /// `(time, seq)` — the global event order every golden test pins.
    #[cfg(feature = "validate")]
    fn check_dispatch(&mut self, at: SimTime, seq: u64) {
        crate::invariant!(
            "dispatch-order",
            at >= self.now,
            "event at {:?} behind clock {:?}",
            at,
            self.now
        );
        if let Some((pt, ps)) = self.last_dispatch {
            crate::invariant!(
                "dispatch-order",
                (at, seq) > (pt, ps),
                "dispatch key ({:?}, {}) not after ({:?}, {})",
                at,
                seq,
                pt,
                ps
            );
        }
        self.last_dispatch = Some((at, seq));
    }

    #[cfg(not(feature = "validate"))]
    #[inline(always)]
    fn check_dispatch(&mut self, _at: SimTime, _seq: u64) {}

    /// Mutant mode: jump the clock a minute forward without dispatching
    /// anything, so the next pending event — ACK clock, pacing release, or
    /// at minimum the armed RTO — appears to fire in the past (a reordered
    /// tick). Must trip `dispatch-order` on the next [`step`](Self::step).
    #[cfg(feature = "validate")]
    pub fn mutant_reorder_tick(&mut self) {
        self.now += crate::time::SimDuration::from_secs(60);
    }

    /// Mutant mode: free a packet-store id that is already on the free
    /// list, as a buggy dealloc path would. Must trip `packet-store`.
    ///
    /// # Panics
    /// Panics (as intended) via the invariant; also panics if no id has
    /// ever cycled through the free list (drive some traffic first).
    #[cfg(feature = "validate")]
    pub fn mutant_store_double_free(&mut self) {
        self.store.mutant_double_free_recycled();
    }

    /// Mutant mode: leak bytes in the first link's queue accounting.
    /// Must trip `queue-byte-conservation`.
    #[cfg(feature = "validate")]
    pub fn mutant_queue_byte_leak(&mut self) {
        let link = self.links.first_mut().expect("no links in topology");
        let occupied = link.queue.occupied_bytes();
        link.queue
            .stats_mut()
            .mutant_leak_dropped_bytes(1_500, occupied);
    }

    /// Mutant mode: claim a packet was injected without sending anything,
    /// as a buggy source-accounting path would. Must trip
    /// `topology-packet-conservation`.
    #[cfg(feature = "validate")]
    pub fn mutant_phantom_inject(&mut self) {
        self.flow_stats_mut(FlowId(0)).injected_packets += 1;
        self.check_topology_conservation();
    }

    /// Shared-queue conservation across the whole topology: every packet a
    /// source injected is delivered, dropped, or still live in the packet
    /// store (queued on some hop, serializing on some wire, or propagating
    /// toward its arrival). Checked at run boundaries — O(links + flows),
    /// off the per-event path.
    #[cfg(feature = "validate")]
    pub fn check_topology_conservation(&self) {
        let mut injected = 0u64;
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        for st in self
            .flow_stats
            .iter()
            .chain(self.flow_stats_overflow.values())
        {
            injected += st.injected_packets;
            delivered += st.delivered_packets;
            dropped += st.dropped_packets;
        }
        // Cross-check the store's live count against the queue/wire census:
        // every live id must be queued, in flight, or parked in the heap.
        let queued: u64 = self.links.iter().map(|l| l.queue.len() as u64).sum();
        let flying = self.in_flight.iter().filter(|p| p.is_some()).count() as u64;
        let live = self.store.live() as u64;
        crate::invariant!(
            "topology-packet-conservation",
            queued + flying <= live,
            "queued {} + flying {} exceeds live store count {}",
            queued,
            flying,
            live
        );
        crate::invariant!(
            "topology-packet-conservation",
            injected == delivered + dropped + live,
            "injected {} != delivered {} + dropped {} + live {} (queued {}, flying {})",
            injected,
            delivered,
            dropped,
            live,
            queued,
            flying
        );
    }

    #[cfg(not(feature = "validate"))]
    #[inline(always)]
    fn check_topology_conservation(&self) {}

    fn deliver(&mut self, node: NodeId, pid: PacketId) {
        let dst = self.store.dst(pid);
        if dst != node {
            // Intermediate hop: keep forwarding without materializing the
            // cold columns — only the hot handle moves.
            let pkt = self.store.make_ref(pid);
            self.route_packet(node, dst, pkt);
            return;
        }
        let pkt = self.store.take(pid);
        let st = self.flow_stats_mut(pkt.flow);
        st.delivered_bytes += pkt.size;
        st.delivered_packets += 1;
        if self.nodes[node.0].endpoint.is_some() {
            let mut ep = self.nodes[node.0].endpoint.take().expect("checked");
            let mut out = std::mem::take(&mut self.scratch_out);
            let mut timers = std::mem::take(&mut self.scratch_timers);
            let mut ctx = NodeCtx {
                node,
                out: &mut out,
                timers: &mut timers,
            };
            ep.on_packet(self.now, pkt, &mut ctx);
            self.nodes[node.0].endpoint = Some(ep);
            self.apply_ctx(node, &mut out, &mut timers);
            self.scratch_out = out;
            self.scratch_timers = timers;
        }
    }

    fn dispatch_timer(&mut self, node: NodeId, token: u64) {
        if self.nodes[node.0].endpoint.is_some() {
            let mut ep = self.nodes[node.0].endpoint.take().expect("checked");
            let mut out = std::mem::take(&mut self.scratch_out);
            let mut timers = std::mem::take(&mut self.scratch_timers);
            let mut ctx = NodeCtx {
                node,
                out: &mut out,
                timers: &mut timers,
            };
            ep.on_timer(self.now, token, &mut ctx);
            self.nodes[node.0].endpoint = Some(ep);
            self.apply_ctx(node, &mut out, &mut timers);
            self.scratch_out = out;
            self.scratch_timers = timers;
        }
    }

    /// Drain one callback's scratch output into the queues. Timers first,
    /// then packets — the historical seq-assignment order, which golden
    /// tests pin.
    fn apply_ctx(&mut self, node: NodeId, out: &mut Vec<Packet>, timers: &mut Vec<(SimTime, u64)>) {
        for (at, token) in timers.drain(..) {
            self.push_timer(at.max(self.now), node, token);
        }
        for mut pkt in out.drain(..) {
            pkt.sent_at = self.now;
            let st = self.flow_stats_mut(pkt.flow);
            st.injected_packets += 1;
            st.injected_bytes += pkt.size;
            let dst = pkt.dst;
            let pref = self.store.insert(pkt);
            self.route_packet(node, dst, pref);
        }
    }

    /// Process all events up to and including `deadline`, then set the clock
    /// to `deadline`. Events after the deadline stay queued.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        loop {
            let packet_t = self.events.peek().map(|&Reverse(e)| e.at);
            let timer_t = self.timers.peek_key().map(|(at, _)| at);
            let next = match (packet_t, timer_t) {
                (None, None) => break,
                (Some(p), None) => p,
                (None, Some(t)) => t,
                (Some(p), Some(t)) => p.min(t),
            };
            if next > deadline {
                break;
            }
            self.step_inner(deadline, u64::MAX);
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.check_topology_conservation();
        self.now
    }

    /// Run until no events remain.
    pub fn run_to_completion(&mut self) -> SimTime {
        while self.step_inner(SimTime::MAX, u64::MAX) {}
        self.check_topology_conservation();
        self.now
    }

    /// Run until no events remain or `max_events` further events have been
    /// processed, whichever comes first. A drained queue returns `Ok`; an
    /// exhausted budget with events still pending returns the
    /// [`BudgetExceeded`] error so runaway scenarios (routing loops,
    /// self-rearming timers) fail loudly instead of spinning forever.
    pub fn run_with_budget(&mut self, max_events: u64) -> Result<SimTime, BudgetExceeded> {
        let limit = self.processed_events.saturating_add(max_events);
        while self.processed_events < limit {
            if !self.step_inner(SimTime::MAX, limit) {
                self.check_topology_conservation();
                return Ok(self.now);
            }
        }
        self.check_topology_conservation();
        if self.events.is_empty() && self.timers.is_empty() {
            Ok(self.now)
        } else {
            Err(BudgetExceeded {
                processed_events: self.processed_events,
                at: self.now,
            })
        }
    }

    /// Time of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let packet_t = self.events.peek().map(|&Reverse(e)| e.at);
        let timer_t = self.timers.next_time();
        match (packet_t, timer_t) {
            (None, t) => t,
            (p, None) => p,
            (Some(p), Some(t)) => Some(p.min(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Payload;
    use crate::time::SimDuration;
    use crate::units::Rate;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Records arrival times of packets and timer firings.
    struct Recorder {
        arrivals: Rc<RefCell<Vec<(SimTime, Packet)>>>,
        timers: Rc<RefCell<Vec<(SimTime, u64)>>>,
    }

    impl Endpoint for Recorder {
        fn on_packet(&mut self, now: SimTime, pkt: Packet, _ctx: &mut NodeCtx) {
            self.arrivals.borrow_mut().push((now, pkt));
        }
        fn on_timer(&mut self, now: SimTime, token: u64, _ctx: &mut NodeCtx) {
            self.timers.borrow_mut().push((now, token));
        }
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn two_node_sim(
        rate_mbps: f64,
        delay: SimDuration,
    ) -> (Simulator, NodeId, NodeId, LinkId, LinkId) {
        let mut sim = Simulator::new();
        let a = sim.add_node();
        let b = sim.add_node();
        let cfg = LinkConfig::new(Rate::from_mbps(rate_mbps), delay, 1_000_000);
        let (ab, ba) = sim.add_duplex_link(a, b, cfg);
        sim.add_route(a, b, ab);
        sim.add_route(b, a, ba);
        (sim, a, b, ab, ba)
    }

    #[test]
    fn packet_delivery_timing() {
        // 12 Mbps: a 1500 B packet serializes in 1 ms, plus 5 ms propagation.
        let (mut sim, a, b, _, _) = two_node_sim(12.0, SimDuration::from_millis(5));
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let timers = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            b,
            Box::new(Recorder {
                arrivals: arrivals.clone(),
                timers,
            }),
        );

        let pkt = Packet::new(a, b, FlowId(1), Payload::Datagram { seq: 0 }).with_size(1500);
        sim.inject(a, pkt);
        sim.run_to_completion();

        let got = arrivals.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, SimTime::from_millis(6));
        let st = sim.flow_stats(FlowId(1));
        assert_eq!(st.delivered_packets, 1);
        assert_eq!(st.delivered_bytes, 1500);
    }

    #[test]
    fn back_to_back_packets_serialize_sequentially() {
        let (mut sim, a, b, _, _) = two_node_sim(12.0, SimDuration::from_millis(5));
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let timers = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            b,
            Box::new(Recorder {
                arrivals: arrivals.clone(),
                timers,
            }),
        );

        for seq in 0..3 {
            let pkt = Packet::new(a, b, FlowId(1), Payload::Datagram { seq }).with_size(1500);
            sim.inject(a, pkt);
        }
        sim.run_to_completion();

        let got = arrivals.borrow();
        assert_eq!(got.len(), 3);
        // Arrivals at 6, 7, 8 ms: serialization is the spacing bottleneck.
        assert_eq!(got[0].0, SimTime::from_millis(6));
        assert_eq!(got[1].0, SimTime::from_millis(7));
        assert_eq!(got[2].0, SimTime::from_millis(8));
    }

    #[test]
    fn queue_overflow_drops_and_counts() {
        let mut sim = Simulator::new();
        let a = sim.add_node();
        let b = sim.add_node();
        // Queue fits 2 x 1500.
        let cfg = LinkConfig::new(Rate::from_mbps(1.0), SimDuration::from_millis(1), 3000);
        let ab = sim.add_link(a, b, cfg);
        sim.add_route(a, b, ab);

        for seq in 0..5 {
            let pkt = Packet::new(a, b, FlowId(9), Payload::Datagram { seq }).with_size(1500);
            sim.inject(a, pkt);
        }
        sim.run_to_completion();
        let st = sim.flow_stats(FlowId(9));
        // One on the wire, two queued, two dropped.
        assert_eq!(st.delivered_packets, 3);
        assert_eq!(st.dropped_packets, 2);
        assert_eq!(st.dropped_bytes, 3000);
        assert_eq!(st.injected_packets, 5);
        assert_eq!(st.injected_bytes, 7500);
        assert_eq!(sim.link(ab).queue.stats().drops, 2);
    }

    #[test]
    fn timers_fire_in_order() {
        let (mut sim, _a, b, _, _) = two_node_sim(10.0, SimDuration::from_millis(1));
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let timers = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            b,
            Box::new(Recorder {
                arrivals,
                timers: timers.clone(),
            }),
        );

        sim.start_timer(b, SimTime::from_millis(30), 3);
        sim.start_timer(b, SimTime::from_millis(10), 1);
        sim.start_timer(b, SimTime::from_millis(20), 2);
        sim.run_to_completion();

        let got = timers.borrow();
        assert_eq!(
            got.as_slice(),
            &[
                (SimTime::from_millis(10), 1),
                (SimTime::from_millis(20), 2),
                (SimTime::from_millis(30), 3)
            ]
        );
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let (mut sim, _a, b, _, _) = two_node_sim(10.0, SimDuration::from_millis(1));
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let timers = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            b,
            Box::new(Recorder {
                arrivals,
                timers: timers.clone(),
            }),
        );

        let t = SimTime::from_millis(5);
        for token in 0..10 {
            sim.start_timer(b, t, token);
        }
        sim.run_to_completion();
        let got = timers.borrow();
        let tokens: Vec<u64> = got.iter().map(|&(_, tok)| tok).collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn multi_hop_forwarding() {
        // a -- r -- b: packets from a to b are forwarded through r.
        let mut sim = Simulator::new();
        let a = sim.add_node();
        let r = sim.add_node();
        let b = sim.add_node();
        let cfg = LinkConfig::new(Rate::from_mbps(12.0), SimDuration::from_millis(2), 100_000);
        let ar = sim.add_link(a, r, cfg);
        let rb = sim.add_link(r, b, cfg);
        sim.add_route(a, b, ar);
        sim.add_route(r, b, rb);

        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let timers = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            b,
            Box::new(Recorder {
                arrivals: arrivals.clone(),
                timers,
            }),
        );

        let pkt = Packet::new(a, b, FlowId(2), Payload::Datagram { seq: 0 }).with_size(1500);
        sim.inject(a, pkt);
        sim.run_to_completion();

        let got = arrivals.borrow();
        assert_eq!(got.len(), 1);
        // Two hops: 2 x (1 ms serialize + 2 ms propagate) = 6 ms.
        assert_eq!(got[0].0, SimTime::from_millis(6));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, _a, b, _, _) = two_node_sim(10.0, SimDuration::from_millis(1));
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let timers = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            b,
            Box::new(Recorder {
                arrivals,
                timers: timers.clone(),
            }),
        );

        sim.start_timer(b, SimTime::from_millis(10), 1);
        sim.start_timer(b, SimTime::from_millis(50), 2);
        let t = sim.run_until(SimTime::from_millis(20));
        assert_eq!(t, SimTime::from_millis(20));
        assert_eq!(timers.borrow().len(), 1);
        sim.run_to_completion();
        assert_eq!(timers.borrow().len(), 2);
    }

    #[test]
    fn run_with_budget_flags_pending_work() {
        let (mut sim, _a, b, _, _) = two_node_sim(10.0, SimDuration::from_millis(1));
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let timers = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(b, Box::new(Recorder { arrivals, timers }));
        for token in 0..10 {
            sim.start_timer(b, SimTime::from_millis(token + 1), token);
        }

        let err = sim.run_with_budget(4).unwrap_err();
        assert_eq!(err.processed_events, 4);
        assert_eq!(err.at, SimTime::from_millis(4));
        assert_eq!(sim.processed_events(), 4);

        // The remaining six fit; a drained queue is Ok even at exact budget.
        let t = sim.run_with_budget(6).unwrap();
        assert_eq!(t, SimTime::from_millis(10));
        assert!(sim.run_with_budget(0).is_ok());
    }

    #[test]
    fn next_event_time_sees_timers_and_packets() {
        let (mut sim, a, b, _, _) = two_node_sim(12.0, SimDuration::from_millis(5));
        assert_eq!(sim.next_event_time(), None);
        sim.start_timer(b, SimTime::from_millis(50), 1);
        assert_eq!(sim.next_event_time(), Some(SimTime::from_millis(50)));
        let pkt = Packet::new(a, b, FlowId(1), Payload::Datagram { seq: 0 }).with_size(1500);
        sim.inject(a, pkt);
        // The LinkTxDone at 1 ms now precedes the timer.
        assert_eq!(sim.next_event_time(), Some(SimTime::from_millis(1)));
    }

    #[test]
    fn shaped_link_paces_deliveries_via_wakeups() {
        // 100 Mbps line, 8 Mbps token-bucket shaper with a one-packet
        // burst: deliveries must be spaced ~1 ms by LinkWake events, not
        // by serialization (which takes only 80 us).
        let mut sim = Simulator::new();
        let a = sim.add_node();
        let b = sim.add_node();
        let cfg = LinkConfig::new(
            Rate::from_mbps(100.0),
            SimDuration::from_millis(1),
            1_000_000,
        )
        .with_discipline(crate::queue::Discipline::TokenBucket(
            crate::shaper::TokenBucketConfig::new(Rate::from_mbps(8.0), 1_000),
        ));
        let ab = sim.add_link(a, b, cfg);
        sim.add_route(a, b, ab);

        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let timers = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            b,
            Box::new(Recorder {
                arrivals: arrivals.clone(),
                timers,
            }),
        );
        for seq in 0..4 {
            let pkt = Packet::new(a, b, FlowId(3), Payload::Datagram { seq }).with_size(1_000);
            sim.inject(a, pkt);
        }
        sim.run_to_completion();

        let got = arrivals.borrow();
        assert_eq!(got.len(), 4);
        // First packet rides the stored burst; each next waits ~1 ms for
        // tokens. Gaps between consecutive arrivals must be ~1 ms.
        for w in got.windows(2) {
            let gap = w[1].0 - w[0].0;
            let gap_us = gap.as_nanos() / 1_000;
            assert!(
                (950..=1_100).contains(&gap_us),
                "arrival gap {gap_us} us, expected ~1000"
            );
        }
        assert_eq!(sim.flow_stats(FlowId(3)).delivered_packets, 4);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let mut sim = Simulator::new();
        let a = sim.add_node();
        let b = sim.add_node();
        let pkt = Packet::new(a, b, FlowId(1), Payload::Datagram { seq: 0 });
        sim.inject(a, pkt);
    }

    #[test]
    fn flow_stats_dense_overflow_boundary() {
        let (mut sim, a, b, _, _) = two_node_sim(100.0, SimDuration::from_millis(1));
        // Ids straddling the dense/overflow boundary, in mixed order so the
        // dense table grows out of order too.
        let ids = [
            DENSE_FLOWS,
            0,
            DENSE_FLOWS - 1,
            u64::MAX,
            7,
            DENSE_FLOWS + 1,
        ];
        for (seq, &id) in ids.iter().enumerate() {
            let pkt = Packet::new(a, b, FlowId(id), Payload::Datagram { seq: seq as u64 })
                .with_size(1_000);
            sim.inject(a, pkt);
        }
        sim.run_to_completion();
        for &id in &ids {
            let st = sim.flow_stats(FlowId(id));
            assert_eq!(st.injected_packets, 1, "flow {id}");
            assert_eq!(st.delivered_packets, 1, "flow {id}");
            assert_eq!(st.delivered_bytes, 1_000, "flow {id}");
        }
        // The dense table stops at the boundary; large ids go to the map.
        assert!(sim.flow_stats.len() <= DENSE_FLOWS as usize);
        assert_eq!(sim.flow_stats_overflow.len(), 3);
        assert!(sim.flow_stats_overflow.keys().all(|f| f.0 >= DENSE_FLOWS));
        // Untouched flows read back as zeros on both sides of the boundary.
        assert_eq!(sim.flow_stats(FlowId(3)).injected_packets, 0);
        assert_eq!(sim.flow_stats(FlowId(DENSE_FLOWS + 99)).injected_packets, 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(32))]

        /// The two-table flow-stats split must behave exactly like one flat
        /// map for any mix of dense, boundary, and huge flow ids.
        #[test]
        fn flow_stats_tables_match_flat_map_model(
            raw in proptest::collection::vec(
                0u64..2 * (DENSE_FLOWS + 32),
                1..128usize,
            )
        ) {
            let (mut sim, a, b, _, _) = two_node_sim(1_000.0, SimDuration::from_micros(10));
            // The upper half of each draw is reflected to the top of the id
            // space so the overflow map sees distant ids, not just
            // boundary-adjacent ones.
            let ids: Vec<u64> = raw
                .iter()
                .map(|&id| {
                    let hi = DENSE_FLOWS + 32;
                    if id >= hi { u64::MAX - (id - hi) } else { id }
                })
                .collect();
            let mut model: HashMap<u64, (u64, u64)> = HashMap::new();
            for (seq, &id) in ids.iter().enumerate() {
                let size = 200 + (id % 1_300);
                let pkt = Packet::new(a, b, FlowId(id), Payload::Datagram { seq: seq as u64 })
                    .with_size(size);
                sim.inject(a, pkt);
                let e = model.entry(id).or_insert((0, 0));
                e.0 += 1;
                e.1 += size;
            }
            sim.run_to_completion();
            for (&id, &(pkts, bytes)) in &model {
                let st = sim.flow_stats(FlowId(id));
                proptest::prop_assert_eq!(st.injected_packets, pkts);
                proptest::prop_assert_eq!(st.injected_bytes, bytes);
                // The queue is far larger than the injected burst, so
                // everything injected must also deliver.
                proptest::prop_assert_eq!(st.delivered_packets, pkts);
            }
            proptest::prop_assert!(sim.flow_stats.len() <= DENSE_FLOWS as usize);
            proptest::prop_assert!(
                sim.flow_stats_overflow.keys().all(|f| f.0 >= DENSE_FLOWS)
            );
        }
    }
}
