//! Property-based tests for the transport layer: every transfer completes
//! exactly, regardless of loss induced by queue sizes, pacing, or chunk
//! sizes.

use netsim::prelude::*;
use proptest::prelude::*;
use transport::{ReceiverEndpoint, SenderEndpoint, TcpConfig};

/// Run one request/response transfer, returning (delivered stream bytes,
/// retransmit fraction, completed transfers).
fn run(
    bytes: u64,
    pace_mbps: Option<f64>,
    rate_mbps: f64,
    queue_mult: f64,
    burst: u32,
) -> (u64, f64, usize) {
    let mut sim = Simulator::new();
    let db = Dumbbell::build(
        &mut sim,
        DumbbellConfig {
            bottleneck_rate: Rate::from_mbps(rate_mbps),
            queue_bdp_multiple: queue_mult,
            ..Default::default()
        },
    );
    let flow = FlowId(1);
    sim.set_endpoint(
        db.left[0],
        Box::new(SenderEndpoint::new(
            db.left[0],
            db.right[0],
            flow,
            TcpConfig {
                max_burst_packets: burst,
                ..Default::default()
            },
        )),
    );
    sim.set_endpoint(
        db.right[0],
        Box::new(ReceiverEndpoint::new(db.right[0], db.left[0], flow)),
    );
    let req = Packet::new(
        db.right[0],
        db.left[0],
        flow,
        Payload::Request {
            id: 0,
            size: bytes,
            pace_bps: pace_mbps.map(|m| m * 1e6),
        },
    );
    sim.inject(db.right[0], req);
    sim.run_until(SimTime::from_secs(300));

    let server: &mut SenderEndpoint = sim.endpoint_mut(db.left[0]).unwrap();
    let retx = server.sender().stats().retransmit_fraction();
    let done = server.completed.len();
    let client: &mut ReceiverEndpoint = sim.endpoint_mut(db.right[0]).unwrap();
    (client.receiver().contiguous_bytes(), retx, done)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reliability: every byte of every transfer is eventually delivered in
    /// order, across queue sizes that force heavy loss.
    #[test]
    fn transfers_always_complete(
        kb in 10u64..2000,
        rate in 2.0f64..60.0,
        queue_mult in 0.5f64..6.0,
        burst in 1u32..40,
    ) {
        let bytes = kb * 1000;
        let (delivered, _retx, done) = run(bytes, None, rate, queue_mult, burst);
        prop_assert_eq!(delivered, bytes);
        prop_assert_eq!(done, 1);
    }

    /// Pacing below the bottleneck eliminates retransmissions entirely.
    #[test]
    fn paced_below_capacity_is_lossless(
        kb in 50u64..1500,
        rate in 10.0f64..80.0,
    ) {
        let pace = rate * 0.5;
        let (delivered, retx, _) = run(kb * 1000, Some(pace), rate, 4.0, 4);
        prop_assert_eq!(delivered, kb * 1000);
        prop_assert!(retx == 0.0, "retx {retx} with pace {pace} < rate {rate}");
    }

    /// Paced transfers never beat the pace rate (with a small burst bucket;
    /// the default 40-packet bucket deliberately allows a 60 kB line-rate
    /// burst, which dominates transfers of comparable size — that is the
    /// burst-size effect of the paper's Fig 4, tested separately).
    #[test]
    fn pace_is_an_upper_bound(kb in 100u64..1000, pace in 2.0f64..20.0) {
        let bytes = kb * 1000;
        let mut sim = Simulator::new();
        let db = Dumbbell::build(&mut sim, DumbbellConfig::default());
        let flow = FlowId(1);
        sim.set_endpoint(
            db.left[0],
            Box::new(SenderEndpoint::new(
                db.left[0],
                db.right[0],
                flow,
                TcpConfig { max_burst_packets: 4, ..Default::default() },
            )),
        );
        sim.set_endpoint(
            db.right[0],
            Box::new(ReceiverEndpoint::new(db.right[0], db.left[0], flow)),
        );
        let req = Packet::new(
            db.right[0],
            db.left[0],
            flow,
            Payload::Request { id: 0, size: bytes, pace_bps: Some(pace * 1e6) },
        );
        sim.inject(db.right[0], req);
        sim.run_until(SimTime::from_secs(600));
        let server: &mut SenderEndpoint = sim.endpoint_mut(db.left[0]).unwrap();
        prop_assert_eq!(server.completed.len(), 1);
        let tput = server.completed[0].throughput().mbps();
        // Allow the initial burst allowance a little slack on tiny files.
        prop_assert!(tput <= pace * 1.15, "tput {tput} > pace {pace}");
    }
}
