//! Sinks: deterministic JSON-lines and a human pretty-table.
//!
//! The JSON-lines sink is the machine contract (DESIGN.md §13): one JSON
//! object per line, sections in fixed order (counters, gauges, hists,
//! spans, trace), names sorted within each section, floats printed with
//! Rust's shortest-roundtrip formatting. Wall-clock spans are **excluded**
//! so the output is byte-identical across seeds' runs regardless of
//! machine speed or worker-thread count. The pretty table is for humans
//! and additionally shows the wall section.

use crate::{bucket_bounds, Registry};
use std::fmt::Write as _;

/// Format an f64 as a JSON value (`null` for non-finite).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl Registry {
    /// Deterministic JSON-lines rendering (excludes wall-clock spans).
    pub fn to_jsonl(&self) -> String {
        let (counters, gauges, hists, spans, _wall) = self.sections();
        let mut out = String::new();
        for (name, v) in counters {
            let _ = writeln!(out, r#"{{"kind":"counter","name":"{name}","value":{v}}}"#);
        }
        for (name, g) in gauges {
            let _ = writeln!(
                out,
                r#"{{"kind":"gauge","name":"{name}","count":{},"last":{},"min":{},"max":{},"mean":{}}}"#,
                g.count,
                num(g.last),
                num(g.min),
                num(g.max),
                num(g.mean()),
            );
        }
        for (name, h) in hists {
            let mut buckets = String::new();
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !buckets.is_empty() {
                    buckets.push(',');
                }
                let (lo, hi) = bucket_bounds(i);
                let _ = write!(buckets, "[{},{},{c}]", num(lo), num(hi));
            }
            let _ = writeln!(
                out,
                r#"{{"kind":"hist","name":"{name}","count":{},"sum":{},"p50":{},"p90":{},"p99":{},"buckets":[{buckets}]}}"#,
                h.count,
                num(h.sum),
                num(h.quantile(0.50)),
                num(h.quantile(0.90)),
                num(h.quantile(0.99)),
            );
        }
        for (name, s) in spans {
            let _ = writeln!(
                out,
                r#"{{"kind":"span","name":"{name}","count":{},"total_ns":{},"max_ns":{},"mean_ms":{}}}"#,
                s.count,
                s.total_ns,
                s.max_ns,
                num(s.mean_ms()),
            );
        }
        for ev in self.trace_ring().events() {
            let _ = writeln!(
                out,
                r#"{{"kind":"trace","id":{},"event":"{}","t_ns":{},"a":{},"b":{}}}"#,
                ev.id.code(),
                ev.id.name(),
                ev.t_ns,
                ev.a,
                ev.b,
            );
        }
        out
    }

    /// Write [`Registry::to_jsonl`] to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Human-readable aligned table (includes the nondeterministic
    /// wall-clock section the JSON-lines sink omits).
    pub fn render_table(&self) -> String {
        let (counters, gauges, hists, spans, wall) = self.sections();
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        if !counters.is_empty() {
            out.push_str("counters\n");
            for (name, v) in counters {
                let _ = writeln!(out, "  {name:<42} {v:>14}");
            }
        }
        if !gauges.is_empty() {
            out.push_str("gauges (last / min / mean / max, n)\n");
            for (name, g) in gauges {
                let _ = writeln!(
                    out,
                    "  {name:<42} {:>12.4} / {:>12.4} / {:>12.4} / {:>12.4}  (n={})",
                    g.last,
                    g.min,
                    g.mean(),
                    g.max,
                    g.count,
                );
            }
        }
        if !hists.is_empty() {
            out.push_str("histograms (p50 / p90 / p99, n)\n");
            for (name, h) in hists {
                let _ = writeln!(
                    out,
                    "  {name:<42} {:>12.4} / {:>12.4} / {:>12.4}  (n={})",
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.count,
                );
            }
        }
        if !spans.is_empty() {
            out.push_str("spans, sim time (mean ms / max ms, n)\n");
            for (name, s) in spans {
                let _ = writeln!(
                    out,
                    "  {name:<42} {:>12.4} / {:>12.4}  (n={})",
                    s.mean_ms(),
                    s.max_ns as f64 / 1e6,
                    s.count,
                );
            }
        }
        if !wall.is_empty() {
            out.push_str("spans, wall clock — nondeterministic (mean ms / max ms, n)\n");
            for (name, s) in wall {
                let _ = writeln!(
                    out,
                    "  {name:<42} {:>12.4} / {:>12.4}  (n={})",
                    s.mean_ms(),
                    s.max_ns as f64 / 1e6,
                    s.count,
                );
            }
        }
        if !self.trace_ring().is_empty() {
            let _ = writeln!(out, "trace (last {} events)", self.trace_ring().len());
            for ev in self.trace_ring().events() {
                let _ = writeln!(
                    out,
                    "  {:>14} ns  {:<16} a={} b={}",
                    ev.t_ns,
                    ev.id.name(),
                    ev.a,
                    ev.b,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Registry, TraceId};

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.counter("netsim.engine.events", 42);
        r.gauge("transport.cwnd_bytes", 14_600.0);
        r.observe("transport.srtt_ms", 35.0);
        r.span("video.rebuffer", 2_000_000_000);
        r.wall_span("abtest.user_wall", std::time::Duration::from_millis(3));
        r.trace(TraceId::LinkDrop, 123, 1, 1500);
        r
    }

    #[test]
    fn jsonl_is_sorted_and_excludes_wall() {
        let out = sample().to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains(r#""kind":"counter""#));
        assert!(lines[1].contains(r#""kind":"gauge""#));
        assert!(lines[2].contains(r#""kind":"hist""#));
        assert!(lines[3].contains(r#""kind":"span""#));
        assert!(lines[4].contains(r#""kind":"trace""#));
        assert!(!out.contains("abtest.user_wall"));
        // Every line parses as a flat JSON object shape.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "bad line: {l}");
        }
    }

    #[test]
    fn jsonl_identical_across_clones() {
        let r = sample();
        assert_eq!(r.to_jsonl(), r.clone().to_jsonl());
    }

    #[test]
    fn table_shows_wall_section() {
        let t = sample().render_table();
        assert!(t.contains("abtest.user_wall"));
        assert!(t.contains("link_drop"));
        assert!(Registry::new().render_table().contains("no metrics"));
    }

    #[test]
    fn nonfinite_values_render_null() {
        let mut r = Registry::new();
        r.gauge("g", f64::NAN);
        let out = r.to_jsonl();
        assert!(out.contains(r#""last":null"#), "{out}");
    }
}
