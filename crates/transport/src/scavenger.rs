//! A LEDBAT-style scavenger congestion controller.
//!
//! The paper's related work (§2.2) discusses scavenger transports (LEDBAT,
//! PCC Proteus) as an alternative way to make video traffic friendlier:
//! they yield to loss-based flows by backing off as soon as queueing delay
//! appears, but they still *fully utilize* the link when no competitor is
//! present. Sammy takes the opposite position — consistently pace near the
//! video's needs regardless of competition. This module implements the
//! scavenger so the two philosophies can be compared head-to-head (see
//! `sammy-bench`'s ablation experiments).
//!
//! The controller follows the LEDBAT design: it estimates queueing delay
//! as `RTT − base RTT`, drives it toward a small `target`, growing the
//! window when below target and shrinking proportionally when above, with
//! a multiplicative decrease on loss.

use crate::cc::{CongestionControl, INITIAL_CWND_SEGMENTS, MAX_CWND_BYTES};
use netsim::{SimDuration, SimTime, MSS_BYTES};

/// Configuration for [`Ledbat`].
#[derive(Debug, Clone, Copy)]
pub struct LedbatConfig {
    /// Target queueing delay. LEDBAT's RFC allows up to 100 ms; scavengers
    /// aiming to be nearly invisible use much less.
    pub target: SimDuration,
    /// Proportional gain on the window update.
    pub gain: f64,
}

impl Default for LedbatConfig {
    fn default() -> Self {
        LedbatConfig {
            target: SimDuration::from_millis(15),
            gain: 1.0,
        }
    }
}

/// Delay-based scavenger congestion control.
#[derive(Debug, Clone)]
pub struct Ledbat {
    cfg: LedbatConfig,
    cwnd: u64,
    ssthresh: u64,
    base_rtt: Option<SimDuration>,
}

impl Ledbat {
    /// A fresh scavenger with the standard initial window.
    pub fn new(cfg: LedbatConfig) -> Self {
        Ledbat {
            cfg,
            cwnd: INITIAL_CWND_SEGMENTS * MSS_BYTES,
            ssthresh: u64::MAX,
            base_rtt: None,
        }
    }

    /// Current estimate of the path's base (uncongested) RTT.
    pub fn base_rtt(&self) -> Option<SimDuration> {
        self.base_rtt
    }
}

impl Default for Ledbat {
    fn default() -> Self {
        Ledbat::new(LedbatConfig::default())
    }
}

impl CongestionControl for Ledbat {
    fn on_ack(
        &mut self,
        _now: SimTime,
        bytes_acked: u64,
        rtt: Option<SimDuration>,
        in_recovery: bool,
    ) {
        if in_recovery {
            return;
        }
        let Some(rtt) = rtt else {
            return;
        };
        let base = match self.base_rtt {
            None => {
                self.base_rtt = Some(rtt);
                rtt
            }
            Some(b) => {
                if rtt < b {
                    self.base_rtt = Some(rtt);
                    rtt
                } else {
                    b
                }
            }
        };
        let queuing = rtt.saturating_since_duration(base);
        let target = self.cfg.target.as_secs_f64().max(1e-6);
        let off_target = (target - queuing.as_secs_f64()) / target; // in (-inf, 1]
                                                                    // LEDBAT window update: proportional controller, clamped so one
                                                                    // update never moves the window by more than one MSS per MSS acked.
        let delta = self.cfg.gain * off_target * bytes_acked as f64 * MSS_BYTES as f64
            / self.cwnd.max(1) as f64;
        let delta = delta.clamp(-(bytes_acked as f64), bytes_acked as f64);
        let next = self.cwnd as f64 + delta;
        self.cwnd = (next.max((2 * MSS_BYTES) as f64) as u64).min(MAX_CWND_BYTES);
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        self.cwnd = (self.cwnd / 2).max(2 * MSS_BYTES);
        self.ssthresh = self.cwnd;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.cwnd = MSS_BYTES.max(MSS_BYTES);
        self.ssthresh = (self.cwnd / 2).max(2 * MSS_BYTES);
    }

    fn on_idle_restart(&mut self, _now: SimTime) {
        self.cwnd = (INITIAL_CWND_SEGMENTS * MSS_BYTES).min(self.cwnd.max(MSS_BYTES));
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn name(&self) -> &'static str {
        "ledbat"
    }
}

/// Helper on [`SimDuration`]-like subtraction used above.
trait SaturatingSince {
    fn saturating_since_duration(self, earlier: SimDuration) -> SimDuration;
}

impl SaturatingSince for SimDuration {
    fn saturating_since_duration(self, earlier: SimDuration) -> SimDuration {
        if self > earlier {
            self - earlier
        } else {
            SimDuration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(cc: &mut Ledbat, rtt_ms: u64, times: usize) {
        for _ in 0..times {
            let w = cc.cwnd();
            cc.on_ack(
                SimTime::ZERO,
                w,
                Some(SimDuration::from_millis(rtt_ms)),
                false,
            );
        }
    }

    #[test]
    fn grows_when_delay_below_target() {
        let mut cc = Ledbat::default();
        let w0 = cc.cwnd();
        // RTT at base: zero queueing delay, full positive off-target.
        ack(&mut cc, 20, 10);
        assert!(cc.cwnd() > w0, "window must grow on an empty queue");
    }

    #[test]
    fn shrinks_when_delay_above_target() {
        let mut cc = Ledbat::default();
        ack(&mut cc, 20, 20); // establish base = 20 ms, grow some
        let w = cc.cwnd();
        // Now 60 ms RTT: 40 ms of queueing >> 15 ms target.
        ack(&mut cc, 60, 10);
        assert!(cc.cwnd() < w, "window must shrink under queueing delay");
    }

    #[test]
    fn converges_near_target_delay() {
        // Simple fluid loop: delay grows with cwnd (single queue model).
        // The controller oscillates around its set point, so compare the
        // time-average of the tail, not the final sample.
        let mut cc = Ledbat::default();
        let base_ms = 20.0;
        // Capacity chosen so the initial window fits within the BDP —
        // otherwise the very first RTT sample already contains queueing
        // delay and poisons the base-RTT estimate (a real LEDBAT
        // sensitivity, but not what this test is about).
        let capacity_bytes_per_ms = 1500.0; // 12 Mbps
        let mut tail = Vec::new();
        for i in 0..4000 {
            let queue_ms = (cc.cwnd() as f64 / capacity_bytes_per_ms - base_ms).max(0.0);
            let rtt = SimDuration::from_secs_f64((base_ms + queue_ms) / 1e3);
            cc.on_ack(SimTime::ZERO, MSS_BYTES, Some(rtt), false);
            if i >= 3000 {
                tail.push(queue_ms);
            }
        }
        let avg = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (avg - 15.0).abs() < 8.0,
            "queueing delay should settle near the 15 ms target, got {avg}"
        );
    }

    #[test]
    fn base_rtt_tracks_minimum() {
        let mut cc = Ledbat::default();
        ack(&mut cc, 30, 1);
        ack(&mut cc, 22, 1);
        ack(&mut cc, 40, 1);
        assert_eq!(cc.base_rtt(), Some(SimDuration::from_millis(22)));
    }

    #[test]
    fn loss_halves() {
        let mut cc = Ledbat::default();
        ack(&mut cc, 20, 20);
        let w = cc.cwnd();
        cc.on_loss_event(SimTime::ZERO);
        assert_eq!(cc.cwnd(), (w / 2).max(2 * MSS_BYTES));
    }

    #[test]
    fn floor_is_two_mss() {
        let mut cc = Ledbat::default();
        ack(&mut cc, 20, 5); // base 20
        for _ in 0..5000 {
            let w = cc.cwnd();
            cc.on_ack(SimTime::ZERO, w, Some(SimDuration::from_millis(500)), false);
        }
        assert!(cc.cwnd() >= 2 * MSS_BYTES);
    }
}
