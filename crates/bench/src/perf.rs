//! The perf-trajectory battery.
//!
//! A fixed set of wall-clock measurements over the hot paths the ROADMAP
//! cares about: raw engine event throughput, a TCP transfer over the
//! packet simulator, fluid-session throughput, and a small-scale table2
//! experiment. The `perf` binary runs the battery, writes a schema'd
//! `BENCH_<n>.json`, and compares against the previous file in the same
//! directory so performance regressions surface as a diff in review, not
//! as a slow bisect months later.
//!
//! Measurements here are wall-clock and machine-dependent; the JSON keeps
//! enough context (units, direction, rep counts) for trend reading, and
//! the comparison flags only changes beyond a configurable tolerance.

use crate::json::{self, Value};
use abtest::{draw_population, Arm, Experiment, ExperimentConfig, PopulationConfig};
use netsim::prelude::*;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema identifier written into every file.
pub const SCHEMA: &str = "sammy-perf/1";

/// One battery entry.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Stable measurement name (comparison key).
    pub name: &'static str,
    /// Measured value.
    pub value: f64,
    /// Unit for display.
    pub unit: &'static str,
    /// Direction: `true` if larger values are improvements.
    pub higher_is_better: bool,
    /// Repetitions averaged into `value`.
    pub reps: u64,
}

/// A comparison of one measurement against the previous file.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Measurement name.
    pub name: String,
    /// Previous value (from the last `BENCH_<n>.json`).
    pub prev: f64,
    /// Current value.
    pub cur: f64,
    /// Percent change, signed so that positive is an improvement.
    pub improvement_pct: f64,
    /// True if the change is a regression beyond tolerance.
    pub regression: bool,
}

/// Battery sizing. `quick` keeps CI runs to a couple of seconds.
#[derive(Debug, Clone, Copy)]
pub struct BatteryConfig {
    /// Target measurement time per timed item.
    pub budget: Duration,
    /// Scale factor for the table2 experiment item.
    pub table2_scale: f64,
    /// Worker-pool size for the table2 item's sharded sessions (0 = all
    /// cores). The experiment output is byte-identical at every setting;
    /// only the wall-clock measurement changes, so the BENCH file records
    /// the thread count used.
    pub threads: usize,
}

impl BatteryConfig {
    /// The default battery (a few seconds per item).
    pub fn full() -> Self {
        BatteryConfig {
            budget: Duration::from_millis(1500),
            table2_scale: 0.3,
            threads: 1,
        }
    }

    /// A tiny battery for CI smoke runs.
    pub fn quick() -> Self {
        BatteryConfig {
            budget: Duration::from_millis(150),
            table2_scale: 0.1,
            threads: 1,
        }
    }
}

/// Time `f` repeatedly until `budget` is filled; returns (mean seconds
/// per call, reps).
fn time_adaptive<F: FnMut()>(budget: Duration, mut f: F) -> (f64, u64) {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(Duration::from_nanos(100));
    let reps = (budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
    let t1 = Instant::now();
    for _ in 0..reps {
        f();
    }
    (t1.elapsed().as_secs_f64() / reps as f64, reps)
}

fn engine_item(budget: Duration) -> Measurement {
    let (secs, reps) = time_adaptive(budget, || {
        let mut sim = Simulator::new();
        let db = Dumbbell::build(&mut sim, DumbbellConfig::default());
        for seq in 0..10_000u64 {
            let pkt = Packet::new(
                db.left[0],
                db.right[0],
                FlowId(1),
                Payload::Datagram { seq },
            )
            .with_size(1500);
            sim.inject(db.left[0], pkt);
        }
        // A 10k-datagram drain takes ~40k events; the budget is a loud
        // backstop against the battery hanging on an engine regression.
        sim.run_with_budget(1_000_000)
            .expect("engine battery exceeded its event budget");
        std::hint::black_box(sim.flow_stats(FlowId(1)).delivered_packets);
    });
    Measurement {
        name: "engine_packets_per_sec",
        value: 10_000.0 / secs,
        unit: "pkts/s",
        higher_is_better: true,
        reps,
    }
}

fn tcp_item(budget: Duration) -> Measurement {
    use transport::{ReceiverEndpoint, SenderEndpoint, TcpConfig};
    let (secs, reps) = time_adaptive(budget, || {
        let mut sim = Simulator::new();
        let db = Dumbbell::build(&mut sim, DumbbellConfig::default());
        let flow = FlowId(1);
        sim.set_endpoint(
            db.left[0],
            Box::new(SenderEndpoint::new(
                db.left[0],
                db.right[0],
                flow,
                TcpConfig::default(),
            )),
        );
        sim.set_endpoint(
            db.right[0],
            Box::new(ReceiverEndpoint::new(db.right[0], db.left[0], flow)),
        );
        let req = Packet::new(
            db.right[0],
            db.left[0],
            flow,
            Payload::Request {
                id: 0,
                size: 5_000_000,
                pace_bps: None,
            },
        );
        sim.inject(db.right[0], req);
        sim.run_until(SimTime::from_secs(30));
        std::hint::black_box(sim.flow_stats(flow).delivered_bytes);
    });
    Measurement {
        name: "tcp_5mb_transfer_ms",
        value: secs * 1e3,
        unit: "ms",
        higher_is_better: false,
        reps,
    }
}

fn fluid_item(budget: Duration) -> Measurement {
    use abr::{shared_history, HistoryPolicy, Mpc, ProductionAbr};
    use fluidsim::{NetworkProfile, SessionBuilder};
    use video::{Ladder, Title, TitleConfig, VmafModel};

    let title = Arc::new(Title::generate(
        Ladder::hd(&VmafModel::standard()),
        &TitleConfig::default(),
    ));
    let profile = NetworkProfile::fast_cable();
    let (secs, reps) = time_adaptive(budget, || {
        let abr = Box::new(ProductionAbr::new(
            Mpc::default(),
            shared_history(),
            HistoryPolicy::AllSamples,
        ));
        let out = SessionBuilder::new(&profile, title.clone(), abr)
            .seed(1)
            .run();
        std::hint::black_box(out.chunks);
    });
    Measurement {
        name: "fluid_sessions_per_sec",
        value: 1.0 / secs,
        unit: "sessions/s",
        higher_is_better: true,
        reps,
    }
}

fn table2_item(scale: f64, threads: usize) -> Measurement {
    let cfg = ExperimentConfig {
        users_per_arm: ((200.0 * scale) as usize).max(20),
        pre_sessions: 3,
        sessions_per_user: 3,
        seed: 2023,
        bootstrap_reps: 50,
        threads,
    };
    let pop = draw_population(&PopulationConfig::default(), cfg.users_per_arm, 2023);
    let t0 = Instant::now();
    let run = Experiment::builder()
        .population(&pop)
        .treatment(Arm::Sammy { c0: 3.2, c1: 2.8 })
        .config(cfg)
        .run()
        .expect("battery setup is valid");
    let wall = t0.elapsed();
    std::hint::black_box((run.control.sessions.len(), run.treatment.sessions.len()));
    Measurement {
        name: "table2_small_wall_ms",
        value: wall.as_secs_f64() * 1e3,
        unit: "ms",
        higher_is_better: false,
        reps: 1,
    }
}

/// Run the whole battery.
pub fn run_battery(cfg: &BatteryConfig) -> Vec<Measurement> {
    vec![
        engine_item(cfg.budget),
        tcp_item(cfg.budget),
        fluid_item(cfg.budget),
        table2_item(cfg.table2_scale, cfg.threads),
    ]
}

/// Compare the current battery against a parsed previous file. A change
/// counts as a regression when the metric moved in its worse direction by
/// more than `tolerance_pct`.
pub fn compare(prev: &Value, cur: &[Measurement], tolerance_pct: f64) -> Vec<Delta> {
    let empty = Vec::new();
    let prev_ms = prev
        .get("measurements")
        .and_then(|v| v.as_arr())
        .unwrap_or(&empty);
    let mut out = Vec::new();
    for m in cur {
        let Some(p) = prev_ms
            .iter()
            .find(|p| p.get("name").and_then(|n| n.as_str()) == Some(m.name))
            .and_then(|p| p.get("value"))
            .and_then(|v| v.as_f64())
        else {
            continue;
        };
        if p <= 0.0 {
            continue;
        }
        let raw_pct = (m.value - p) / p * 100.0;
        let improvement_pct = if m.higher_is_better {
            raw_pct
        } else {
            -raw_pct
        };
        out.push(Delta {
            name: m.name.to_string(),
            prev: p,
            cur: m.value,
            improvement_pct,
            regression: improvement_pct < -tolerance_pct,
        });
    }
    out
}

/// Render a `BENCH_<n>.json` document.
pub fn render(index: u32, quick: bool, measurements: &[Measurement], deltas: &[Delta]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": {},", json::quote(SCHEMA));
    let _ = writeln!(s, "  \"index\": {index},");
    let _ = writeln!(s, "  \"quick\": {quick},");
    s.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": {}, \"value\": {}, \"unit\": {}, \"higher_is_better\": {}, \"reps\": {}}}{comma}",
            json::quote(m.name),
            json::num(m.value),
            json::quote(m.unit),
            m.higher_is_better,
            m.reps,
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"vs_previous\": [\n");
    for (i, d) in deltas.iter().enumerate() {
        let comma = if i + 1 < deltas.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": {}, \"prev\": {}, \"improvement_pct\": {}, \"regression\": {}}}{comma}",
            json::quote(&d.name),
            json::num(d.prev),
            json::num((d.improvement_pct * 100.0).round() / 100.0),
            d.regression,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Find the highest existing `BENCH_<n>.json` index in `dir`.
pub fn latest_index(dir: &std::path::Path) -> Option<u32> {
    let mut best = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u32>().ok())
        {
            best = Some(best.map_or(n, |b: u32| b.max(n)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(name: &'static str, value: f64, higher: bool) -> Measurement {
        Measurement {
            name,
            value,
            unit: "u",
            higher_is_better: higher,
            reps: 1,
        }
    }

    #[test]
    fn render_parse_compare_round_trip() {
        let ms = [fake("a", 100.0, true), fake("b", 10.0, false)];
        let doc = render(1, true, &ms, &[]);
        let prev = json::parse(&doc).unwrap();
        assert_eq!(prev.get("schema").unwrap().as_str(), Some(SCHEMA));

        // a: higher-better drops 20% -> regression; b: lower-better drops
        // (improves) 20% -> improvement.
        let cur = [fake("a", 80.0, true), fake("b", 8.0, false)];
        let deltas = compare(&prev, &cur, 10.0);
        assert_eq!(deltas.len(), 2);
        assert!(deltas[0].regression && deltas[0].improvement_pct < -19.9);
        assert!(!deltas[1].regression && deltas[1].improvement_pct > 19.9);
    }

    #[test]
    fn tolerance_suppresses_noise() {
        let ms = [fake("a", 100.0, true)];
        let prev = json::parse(&render(3, false, &ms, &[])).unwrap();
        let cur = [fake("a", 95.0, true)];
        assert!(!compare(&prev, &cur, 10.0)[0].regression);
        assert!(compare(&prev, &cur, 2.0)[0].regression);
    }

    #[test]
    fn unknown_names_are_skipped() {
        let prev = json::parse(&render(1, false, &[fake("x", 1.0, true)], &[])).unwrap();
        let deltas = compare(&prev, &[fake("y", 1.0, true)], 5.0);
        assert!(deltas.is_empty());
    }

    #[test]
    fn quick_battery_runs() {
        // Smoke: the battery itself must run in a test-sized budget.
        let cfg = BatteryConfig {
            budget: Duration::from_millis(10),
            table2_scale: 0.05,
            threads: 2,
        };
        let ms = run_battery(&cfg);
        assert_eq!(ms.len(), 4);
        assert!(ms.iter().all(|m| m.value.is_finite() && m.value > 0.0));
        let doc = render(1, true, &ms, &[]);
        assert!(json::parse(&doc).is_ok());
    }
}
