//! The buffer-evolution analysis of Appendix A and §4.2.
//!
//! The central identity (Theorem A.1) relates the playback buffer after `T`
//! chunk downloads to the time-average bitrate `r̄` and download-time-
//! weighted average throughput `x̄`:
//!
//! `B_{T+1} = B_0 + D_T − D_T · r̄ / x̄`
//!
//! From it follow the corollaries of §A.1 (average bitrate cannot exceed
//! average throughput without draining the buffer; building buffer costs
//! bitrate; intermediate buffer excursions don't affect average bitrate)
//! and the minimum-throughput threshold (Eq. 1) that lower-bounds Sammy's
//! pace rates.

/// Buffer level after streaming `total_duration_s` of content at
/// time-average bitrate `avg_bitrate_bps` with download-time-weighted
/// average throughput `avg_throughput_bps`, starting from `b0_s` seconds of
/// buffer (Theorem A.1).
pub fn buffer_after(
    b0_s: f64,
    total_duration_s: f64,
    avg_bitrate_bps: f64,
    avg_throughput_bps: f64,
) -> f64 {
    assert!(avg_throughput_bps > 0.0, "throughput must be positive");
    b0_s + total_duration_s - total_duration_s * avg_bitrate_bps / avg_throughput_bps
}

/// The average bitrate achievable given start/end buffer levels and the
/// average throughput — Theorem A.1 solved for `r̄`:
/// `r̄ = x̄ · (1 − (B_{T+1} − B_0)/D_T)`.
pub fn achievable_bitrate(
    b0_s: f64,
    b_end_s: f64,
    total_duration_s: f64,
    avg_throughput_bps: f64,
) -> f64 {
    assert!(total_duration_s > 0.0);
    avg_throughput_bps * (1.0 - (b_end_s - b0_s) / total_duration_s)
}

/// Minimum throughput estimate an HYB-style algorithm needs to select
/// bitrate `r` with buffer `b0_s` over horizon `d_t_s` (Eq. 1, Fig 2b):
/// `x ≥ (r/β) · (1 + B0/D_T)^{-1}`.
pub fn min_throughput_for_bitrate(beta: f64, bitrate_bps: f64, b0_s: f64, d_t_s: f64) -> f64 {
    abr::hyb_min_throughput_bps(beta, bitrate_bps, b0_s, d_t_s)
}

/// Highest bitrate an HYB-style algorithm will select given throughput
/// estimate `x` (Fig 2a): `r ≤ βx (1 + B0/D_T)`.
pub fn max_bitrate_for_throughput(beta: f64, throughput_bps: f64, b0_s: f64, d_t_s: f64) -> f64 {
    abr::hyb_max_bitrate_bps(beta, throughput_bps, b0_s, d_t_s)
}

/// Data for Fig 2b: for each buffer level, the minimum throughput (as a
/// multiple of the bitrate) required to keep selecting that bitrate.
pub fn fig2b_threshold_curve(beta: f64, d_t_s: f64, buffers_s: &[f64]) -> Vec<(f64, f64)> {
    buffers_s
        .iter()
        .map(|&b| (b, min_throughput_for_bitrate(beta, 1.0, b, d_t_s)))
        .collect()
}

/// Data for Fig 2a: bitrate selection cap (as a multiple of the throughput
/// estimate) as a function of buffer level.
pub fn fig2a_selection_curve(beta: f64, d_t_s: f64, buffers_s: &[f64]) -> Vec<(f64, f64)> {
    buffers_s
        .iter()
        .map(|&b| (b, max_bitrate_for_throughput(beta, 1.0, b, d_t_s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_a1_identity() {
        // 20-minute session, bitrate 75% of throughput, start empty:
        // buffer = D(1 - 0.75) = 300 s (the §A.1.2 example inverted).
        let b = buffer_after(0.0, 1200.0, 7.5e6, 10e6);
        assert!((b - 300.0).abs() < 1e-9);
    }

    #[test]
    fn a11_bitrate_cannot_exceed_throughput_without_buffer_drain() {
        // Nondecreasing buffer => r̄ ≤ x̄.
        let x = 8e6;
        for r in [1e6, 4e6, 8e6] {
            let b_end = buffer_after(10.0, 600.0, r, x);
            if b_end >= 10.0 {
                assert!(r <= x);
            }
        }
        // And draining buffer permits r̄ > x̄.
        let r = 10e6;
        let b_end = buffer_after(300.0, 600.0, r, 8e6);
        assert!(b_end < 300.0);
        assert!(r > 8e6);
    }

    #[test]
    fn a12_building_buffer_costs_bitrate() {
        // Build 5 minutes of buffer over a 20-minute session:
        // r̄ = x̄ (1 − 300/1200) = 0.75 x̄.
        let r = achievable_bitrate(0.0, 300.0, 1200.0, 10e6);
        assert!((r - 7.5e6).abs() < 1e-9);
    }

    #[test]
    fn a13_intermediate_buffer_does_not_matter() {
        // First minute: build 30 s of buffer => r̄ = 0.5 x̄ over that minute.
        let r_first = achievable_bitrate(0.0, 30.0, 60.0, 10e6);
        assert!((r_first - 5e6).abs() < 1e-9);
        // Whole 20-minute session ending at the same 30 s of buffer:
        // r̄ = x̄ (1 − 30/1200) = 0.975 x̄ — the early sacrifice washes out.
        let r_total = achievable_bitrate(0.0, 30.0, 1200.0, 10e6);
        assert!((r_total - 9.75e6).abs() < 1e-9);
    }

    #[test]
    fn eq1_empty_buffer_threshold_is_one_over_beta() {
        // β = 0.5, empty buffer: min throughput = 2x the bitrate.
        let x = min_throughput_for_bitrate(0.5, 3e6, 0.0, 20.0);
        assert!((x - 6e6).abs() < 1e-6);
    }

    #[test]
    fn eq1_threshold_decreases_with_buffer() {
        let mut prev = f64::INFINITY;
        for b in [0.0, 5.0, 10.0, 20.0, 60.0, 240.0] {
            let x = min_throughput_for_bitrate(0.5, 3e6, b, 20.0);
            assert!(x < prev, "threshold must fall as the buffer grows");
            prev = x;
        }
    }

    #[test]
    fn fig2_curves_consistent() {
        let buffers = [0.0, 4.0, 8.0, 16.0, 32.0, 64.0];
        let thresh = fig2b_threshold_curve(0.5, 20.0, &buffers);
        let select = fig2a_selection_curve(0.5, 20.0, &buffers);
        for ((b1, min_x), (b2, max_r)) in thresh.iter().zip(select.iter()) {
            assert_eq!(b1, b2);
            // The two curves are reciprocal: min_x(r=1) * max_r(x=1) = 1.
            assert!((min_x * max_r - 1.0).abs() < 1e-9);
        }
        // At empty buffer the threshold is 1/β = 2.
        assert!((thresh[0].1 - 2.0).abs() < 1e-12);
    }
}
