//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! range strategies, tuples of strategies (up to 6-ary),
//! `prop::collection::vec`, and `any::<bool>()`. Inputs
//! are drawn from a deterministic generator seeded by the test's full
//! module path, so failures reproduce exactly; there is no shrinking.
//!
//! Case count defaults to 64 and can be raised with `PROPTEST_CASES`.

/// Deterministic input source for generated cases.
pub mod test_runner {
    use rand::prelude::*;

    /// Per-test RNG; a thin wrapper so strategies don't depend on the
    /// rand shim's traits directly.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seed deterministically from the test's identifier.
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.0.gen()
        }

        /// Uniform 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Number of cases per property: env `PROPTEST_CASES` wins, then the
    /// block's `proptest_config`, then the default of 64.
    pub fn case_count(config: &Config) -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases as usize)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    assert!(span > 0, "empty integer strategy range");
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }

    int_strategy!(u64, u32, u16, u8, usize, i64, i32);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $i:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (S0 / 0, S1 / 1),
        (S0 / 0, S1 / 1, S2 / 2),
        (S0 / 0, S1 / 1, S2 / 2, S3 / 3),
        (S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4),
        (S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5)
    );
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            (rng.unit_f64() - 0.5) * 2e9
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a uniformly drawn length.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector of `element` draws with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Each function body runs once per generated case;
/// `prop_assert*` failures abort the case with a formatted message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let cases = $crate::test_runner::case_count(&__config);
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __result: ::core::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(msg) = __result {
                        panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {:?} != {:?}", __a, __b),
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {:?} == {:?}",
                __a,
                __b
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3.0f64..9.0, n in 1u64..100, b in any::<bool>()) {
            prop_assert!((3.0..9.0).contains(&x));
            prop_assert!((1..100).contains(&n));
            prop_assert!(b == (b as u8 == 1));
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0.0f64..1.0, 2..30)) {
            prop_assert!(v.len() >= 2 && v.len() < 30);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn deterministic_between_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("x::y");
        let mut b = crate::test_runner::TestRng::deterministic("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
