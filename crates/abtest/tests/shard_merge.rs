//! Property tests for shard-merge correctness: the sharded experiment
//! runner splits work across workers and merges per-shard results back
//! together, so merging must be exact for session records (order-preserving
//! concatenation) and order-invariant for the streaming summaries.

use abtest::{ArmResult, SessionRecord, StreamingStat};
use fluidsim::SessionOutcome;
use netsim::{Rate, SimDuration};
use proptest::prelude::*;
use video::QoeSummary;

/// A synthetic session record whose metrics all equal `v`.
fn rec(user: u64, v: f64) -> SessionRecord {
    SessionRecord {
        user,
        pre_p95_mbps: v,
        outcome: SessionOutcome {
            qoe: QoeSummary {
                play_delay: None,
                rebuffer_count: 0,
                rebuffer_time: SimDuration::ZERO,
                mean_vmaf: Some(v),
                initial_vmaf: None,
                mean_bitrate: None,
                played: SimDuration::ZERO,
                quality_switches: 0,
            },
            avg_chunk_throughput: Some(Rate::from_mbps(v)),
            retx_fraction: 0.0,
            median_rtt_ms: v,
            chunks: 1,
            congested_byte_fraction: 0.0,
            chunk_throughputs_mbps: vec![v],
        },
    }
}

/// Split `values` into shards whose sizes are driven by `cuts`.
fn shard<T: Clone>(values: &[T], cuts: &[usize]) -> Vec<Vec<T>> {
    let mut shards = Vec::new();
    let mut rest = values;
    for &c in cuts {
        if rest.is_empty() {
            break;
        }
        let take = (c % rest.len()).max(1).min(rest.len());
        let (head, tail) = rest.split_at(take);
        shards.push(head.to_vec());
        rest = tail;
    }
    if !rest.is_empty() {
        shards.push(rest.to_vec());
    }
    shards
}

proptest! {
    /// Concatenating per-shard `ArmResult`s in shard order reproduces the
    /// pooled session list exactly — the invariant the parallel runner's
    /// bit-identical guarantee rests on.
    #[test]
    fn arm_result_merge_is_exact_concatenation(
        values in prop::collection::vec(0.1f64..500.0, 1..120),
        cuts in prop::collection::vec(1usize..40, 0..8),
    ) {
        let pooled: Vec<SessionRecord> =
            values.iter().enumerate().map(|(i, &v)| rec(i as u64, v)).collect();
        let mut merged = ArmResult::default();
        for piece in shard(&pooled, &cuts) {
            merged.merge(ArmResult { sessions: piece });
        }
        prop_assert_eq!(merged.sessions.len(), pooled.len());
        prop_assert!(
            merged.sessions == pooled,
            "merged shards must equal the pooled session list"
        );
    }

    /// Count and mean of merged `StreamingStat` shards are exact and
    /// independent of shard boundaries and merge order; quantile estimates
    /// stay within the t-digest accuracy envelope of the pooled digest.
    #[test]
    fn streaming_stat_merge_order_invariant(
        values in prop::collection::vec(0.0f64..1000.0, 1..300),
        cuts in prop::collection::vec(1usize..60, 0..6),
        rot in 0usize..16,
    ) {
        let pooled: StreamingStat = values.iter().copied().collect();
        let mut shards: Vec<StreamingStat> = shard(&values, &cuts)
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
        // Merge in a rotated (arbitrary) order, not shard order.
        let k = rot % shards.len().max(1);
        shards.rotate_left(k);
        let mut merged = StreamingStat::new();
        for s in &shards {
            merged.merge(s);
        }

        prop_assert_eq!(merged.count(), pooled.count());
        prop_assert!(
            (merged.mean() - pooled.mean()).abs() < 1e-9,
            "means diverged: {} vs {}", merged.mean(), pooled.mean()
        );
        // Digest estimates are approximate; bound the divergence by a few
        // percent of the value spread.
        let spread = (merged.max().unwrap() - merged.min().unwrap()).max(1.0);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let d = (merged.percentile(q) - pooled.percentile(q)).abs();
            prop_assert!(
                d <= 0.05 * spread,
                "q={}: merged {} vs pooled {} (spread {})",
                q, merged.percentile(q), pooled.percentile(q), spread
            );
        }
    }

    /// Quantile estimates are monotone in `q`, merged or not.
    #[test]
    fn streaming_stat_percentiles_monotone(
        values in prop::collection::vec(-500.0f64..500.0, 2..200),
        cuts in prop::collection::vec(1usize..30, 0..5),
    ) {
        let mut merged = StreamingStat::new();
        for piece in shard(&values, &cuts) {
            merged.merge(&piece.into_iter().collect());
        }
        let qs = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            let (lo, hi) = (merged.percentile(w[0]), merged.percentile(w[1]));
            prop_assert!(lo <= hi + 1e-9, "q={} -> {} > q={} -> {}", w[0], lo, w[1], hi);
        }
        prop_assert!(merged.percentile(0.0) >= merged.min().unwrap() - 1e-9);
        prop_assert!(merged.percentile(1.0) <= merged.max().unwrap() + 1e-9);
    }
}
