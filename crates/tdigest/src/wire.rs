//! A tiny length-checked binary codec shared by the checkpoint formats.
//!
//! The workspace's `serde` is an offline no-op shim (there is no JSON or
//! bincode backend in the tree), so anything that must survive a process
//! boundary — experiment checkpoints, telemetry snapshots — serializes by
//! hand through this module. The encoding is deliberately boring:
//! little-endian fixed-width integers, `f64` as raw IEEE-754 bits (so
//! round-trips are bit-exact, which the resume-equivalence guarantee
//! depends on), and length-prefixed byte strings. Every read is bounds-
//! checked and returns [`WireError`] instead of panicking: checkpoint
//! files come from disk and may be torn or corrupt.

/// A decode failure: the buffer ended early or held an invalid value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was being decoded when the failure hit.
    pub context: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "truncated or invalid wire data while reading {}",
            self.context
        )
    }
}

impl std::error::Error for WireError {}

/// Append a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its raw IEEE-754 bits (bit-exact round trip,
/// including NaN payloads and signed zeros/infinities).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Bounds-checked sequential reader over an encoded buffer.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read an `f64` from its raw bits.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Read a `u64` and check it fits a sane in-memory allocation before
    /// using it as a collection length (guards corrupt files against
    /// attempted multi-exabyte `Vec::with_capacity`).
    pub fn len(&mut self, context: &'static str) -> Result<usize, WireError> {
        let n = self.u64(context)?;
        if n > (1 << 40) {
            return Err(WireError { context });
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], WireError> {
        let n = self.len(context)?;
        self.take(n, context)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes(context)?).map_err(|_| WireError { context })
    }
}

/// FNV-1a 64-bit hash — the workspace's stable, dependency-free
/// fingerprint (same constants as the golden-test hashers).
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorb a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Absorb a string (length-delimited so concatenations can't collide).
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_strings() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 0xDEAD_BEEF_0BAD_F00D);
        put_u32(&mut buf, 7);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_str(&mut buf, "hello");
        put_bytes(&mut buf, &[1, 2, 3]);

        let mut r = Reader::new(&buf);
        assert_eq!(r.u64("a").unwrap(), 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(r.u32("b").unwrap(), 7);
        assert_eq!(r.f64("c").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64("d").unwrap().is_nan());
        assert_eq!(r.str("e").unwrap(), "hello");
        assert_eq!(r.bytes("f").unwrap(), &[1, 2, 3]);
        assert!(r.is_done());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_str(&mut buf, "metric.name");
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(r.str("name").is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn absurd_length_is_rejected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        let mut r = Reader::new(&buf);
        assert!(r.len("len").is_err());
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        let mut h = Fnv::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
