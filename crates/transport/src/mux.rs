//! Transport selection: one enum over the TCP and QUIC state machines.
//!
//! Host endpoints ([`crate::SenderEndpoint`], [`crate::MultiSenderEndpoint`],
//! the video client) hold a [`TransportSender`]/[`TransportReceiver`] and
//! stay oblivious to which wire protocol is running; [`Protocol`] in
//! [`TcpConfig`](crate::TcpConfig) picks the variant. This is what lets the
//! A/B matrix vary transport and congestion control independently of the
//! Sammy pacing policy.

use crate::quic::{QuicReceiver, QuicSender};
use crate::receiver::TcpReceiver;
use crate::sender::{CompletedTransfer, SenderStats, TcpConfig, TcpSender};
use netsim::{FlowId, NodeId, Packet, Payload, Rate, SimDuration, SimTime};
use tdigest::TDigest;

/// Which wire protocol a sender/receiver pair speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protocol {
    /// TCP-style cumulative-ACK byte stream (NewReno recovery).
    #[default]
    Tcp,
    /// QUIC-style streams with ACK ranges and selective retransmission.
    Quic,
}

impl Protocol {
    /// Parse a protocol name (`tcp` / `quic`), as used by CLI flags.
    pub fn parse(s: &str) -> Option<Protocol> {
        s.parse().ok()
    }

    /// Lower-case name for CSV columns and CLI round-tripping.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Tcp => "tcp",
            Protocol::Quic => "quic",
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The one spelling of each protocol shared by the CLI, the JSON spec
/// API, and CSV headers. Unknown names are a [`SimError::Parse`], never a
/// panic or a silent default.
impl std::str::FromStr for Protocol {
    type Err = netsim::SimError;

    fn from_str(s: &str) -> Result<Protocol, netsim::SimError> {
        match s.to_ascii_lowercase().as_str() {
            "tcp" => Ok(Protocol::Tcp),
            "quic" => Ok(Protocol::Quic),
            _ => Err(netsim::SimError::Parse {
                what: "transport protocol",
                input: s.to_string(),
                reason: "expected tcp or quic".into(),
            }),
        }
    }
}

/// A sender of either protocol, chosen by [`TcpConfig::transport`].
///
/// Every method delegates to the underlying state machine; the two expose
/// the same surface by construction.
#[derive(Debug)]
pub enum TransportSender {
    /// TCP byte-stream sender.
    Tcp(TcpSender),
    /// QUIC-style stream sender.
    Quic(QuicSender),
}

impl TransportSender {
    /// Build the sender variant selected by `cfg.transport`.
    pub fn new(src: NodeId, dst: NodeId, flow: FlowId, cfg: TcpConfig) -> Self {
        match cfg.transport {
            Protocol::Tcp => TransportSender::Tcp(TcpSender::new(src, dst, flow, cfg)),
            Protocol::Quic => TransportSender::Quic(QuicSender::new(src, dst, flow, cfg)),
        }
    }

    /// Which protocol this sender speaks.
    pub fn protocol(&self) -> Protocol {
        match self {
            TransportSender::Tcp(_) => Protocol::Tcp,
            TransportSender::Quic(_) => Protocol::Quic,
        }
    }

    /// The connection's flow id.
    pub fn flow(&self) -> FlowId {
        match self {
            TransportSender::Tcp(s) => s.flow(),
            TransportSender::Quic(s) => s.flow(),
        }
    }

    /// Queue a transfer of `bytes`, paced at `pace`; returns the transfer id.
    pub fn start_transfer(&mut self, now: SimTime, bytes: u64, pace: Option<Rate>) -> u64 {
        match self {
            TransportSender::Tcp(s) => s.start_transfer(now, bytes, pace),
            TransportSender::Quic(s) => s.start_transfer(now, bytes, pace),
        }
    }

    /// Change a queued/in-flight transfer's pace rate.
    pub fn set_transfer_pace(&mut self, now: SimTime, id: u64, pace: Option<Rate>) {
        match self {
            TransportSender::Tcp(s) => s.set_transfer_pace(now, id, pace),
            TransportSender::Quic(s) => s.set_transfer_pace(now, id, pace),
        }
    }

    /// Transmit whatever the window, flow control, and pacer allow.
    pub fn pump(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        match self {
            TransportSender::Tcp(s) => s.pump(now, out),
            TransportSender::Quic(s) => s.pump(now, out),
        }
    }

    /// Timer callback (retransmission timeouts, pacing releases).
    pub fn on_tick(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        match self {
            TransportSender::Tcp(s) => s.on_tick(now, out),
            TransportSender::Quic(s) => s.on_tick(now, out),
        }
    }

    /// Feed an arriving packet to the sender. Returns `true` if it was an
    /// acknowledgment of this sender's protocol and flow (and was
    /// consumed), `false` for anything else — e.g. a [`Payload::Request`],
    /// which the host endpoint handles itself.
    pub fn handle_packet(&mut self, now: SimTime, pkt: &Packet, out: &mut Vec<Packet>) -> bool {
        match self {
            TransportSender::Tcp(s) => match pkt.payload {
                Payload::Ack {
                    cum_ack,
                    echo_ts,
                    round,
                } if pkt.flow == s.flow() => {
                    s.on_ack(now, cum_ack, echo_ts, round, out);
                    true
                }
                _ => false,
            },
            TransportSender::Quic(s) => s.on_ack_packet(now, pkt, out),
        }
    }

    /// When the sender next needs a timer callback.
    pub fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime> {
        match self {
            TransportSender::Tcp(s) => s.next_wakeup(now),
            TransportSender::Quic(s) => s.next_wakeup(now),
        }
    }

    /// Drain completed-transfer reports.
    pub fn take_completed(&mut self) -> Vec<CompletedTransfer> {
        match self {
            TransportSender::Tcp(s) => s.take_completed(),
            TransportSender::Quic(s) => s.take_completed(),
        }
    }

    /// True when nothing remains queued or outstanding.
    pub fn is_idle(&self) -> bool {
        match self {
            TransportSender::Tcp(s) => s.is_idle(),
            TransportSender::Quic(s) => s.is_idle(),
        }
    }

    /// Bytes currently in flight.
    pub fn bytes_in_flight(&self) -> u64 {
        match self {
            TransportSender::Tcp(s) => s.bytes_in_flight(),
            TransportSender::Quic(s) => s.bytes_in_flight(),
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        match self {
            TransportSender::Tcp(s) => s.cwnd(),
            TransportSender::Quic(s) => s.cwnd(),
        }
    }

    /// The congestion-control algorithm's name.
    pub fn cc_name(&self) -> &'static str {
        match self {
            TransportSender::Tcp(s) => s.cc_name(),
            TransportSender::Quic(s) => s.cc_name(),
        }
    }

    /// Telemetry counters.
    pub fn stats(&self) -> &SenderStats {
        match self {
            TransportSender::Tcp(s) => s.stats(),
            TransportSender::Quic(s) => s.stats(),
        }
    }

    /// Per-packet RTT samples (t-digest).
    pub fn rtt_digest(&self) -> &TDigest {
        match self {
            TransportSender::Tcp(s) => s.rtt_digest(),
            TransportSender::Quic(s) => s.rtt_digest(),
        }
    }

    /// Smoothed RTT estimate.
    pub fn srtt(&self) -> Option<SimDuration> {
        match self {
            TransportSender::Tcp(s) => s.srtt(),
            TransportSender::Quic(s) => s.srtt(),
        }
    }
}

/// A receiver of either protocol.
#[derive(Debug)]
pub enum TransportReceiver {
    /// TCP cumulative-ACK receiver.
    Tcp(TcpReceiver),
    /// QUIC-style range-ACK receiver.
    Quic(QuicReceiver),
}

impl TransportReceiver {
    /// Build the receiver variant for `protocol`.
    pub fn new(local: NodeId, remote: NodeId, flow: FlowId, protocol: Protocol) -> Self {
        match protocol {
            Protocol::Tcp => TransportReceiver::Tcp(TcpReceiver::new(local, remote, flow)),
            Protocol::Quic => TransportReceiver::Quic(QuicReceiver::new(local, remote, flow)),
        }
    }

    /// The flow id this receiver listens on.
    pub fn flow(&self) -> FlowId {
        match self {
            TransportReceiver::Tcp(r) => r.flow(),
            TransportReceiver::Quic(r) => r.flow(),
        }
    }

    /// Handle an arriving data packet of this receiver's protocol,
    /// producing the ACK to send back. `None` for any other packet.
    pub fn on_data(&mut self, now: SimTime, pkt: &Packet) -> Option<Packet> {
        match self {
            TransportReceiver::Tcp(r) => r.on_data(now, pkt),
            TransportReceiver::Quic(r) => r.on_data(now, pkt),
        }
    }

    /// Application-visible delivered bytes (contiguous prefix for TCP; sum
    /// of per-stream contiguous prefixes for QUIC).
    pub fn contiguous_bytes(&self) -> u64 {
        match self {
            TransportReceiver::Tcp(r) => r.contiguous_bytes(),
            TransportReceiver::Quic(r) => r.contiguous_bytes(),
        }
    }

    /// Total payload bytes received, including duplicates.
    pub fn bytes_received(&self) -> u64 {
        match self {
            TransportReceiver::Tcp(r) => r.bytes_received,
            TransportReceiver::Quic(r) => r.bytes_received,
        }
    }

    /// Payload bytes that duplicated already-held data.
    pub fn duplicate_bytes(&self) -> u64 {
        match self {
            TransportReceiver::Tcp(r) => r.duplicate_bytes,
            TransportReceiver::Quic(r) => r.duplicate_bytes,
        }
    }
}

/// Payload length of a data packet of either protocol, or `None` if the
/// packet carries no transport data. Used by endpoints to record goodput
/// without matching on the payload themselves.
pub fn data_len(pkt: &Packet) -> Option<u64> {
    match pkt.payload {
        Payload::Data { len, .. } => Some(len as u64),
        Payload::QuicData { len, .. } => Some(len as u64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_parse_roundtrip() {
        assert_eq!(Protocol::parse("tcp"), Some(Protocol::Tcp));
        assert_eq!(Protocol::parse("QUIC"), Some(Protocol::Quic));
        assert_eq!(Protocol::parse("sctp"), None);
        for p in [Protocol::Tcp, Protocol::Quic] {
            assert_eq!(Protocol::parse(p.name()), Some(p));
            // Display and FromStr agree with name()/parse(): one spelling
            // for CLI flags, the JSON API, and CSV headers.
            assert_eq!(p.to_string(), p.name());
            assert_eq!(p.to_string().parse::<Protocol>().unwrap(), p);
        }
        let err = "sctp".parse::<Protocol>().unwrap_err();
        assert!(err.to_string().contains("sctp"), "{err}");
        assert!(err.to_string().contains("tcp or quic"), "{err}");
    }

    #[test]
    fn sender_variant_follows_config() {
        let tcp = TransportSender::new(NodeId(0), NodeId(1), FlowId(1), TcpConfig::default());
        assert_eq!(tcp.protocol(), Protocol::Tcp);
        let quic = TransportSender::new(
            NodeId(0),
            NodeId(1),
            FlowId(1),
            TcpConfig {
                transport: Protocol::Quic,
                ..Default::default()
            },
        );
        assert_eq!(quic.protocol(), Protocol::Quic);
    }

    /// The same request-driven transfer completes over either variant.
    #[test]
    fn both_variants_complete_a_transfer() {
        for proto in [Protocol::Tcp, Protocol::Quic] {
            let cfg = TcpConfig {
                transport: proto,
                ..Default::default()
            };
            let mut s = TransportSender::new(NodeId(0), NodeId(1), FlowId(1), cfg);
            let mut r = TransportReceiver::new(NodeId(1), NodeId(0), FlowId(1), proto);
            let mut out = Vec::new();
            s.start_transfer(SimTime::ZERO, 100_000, None);
            s.pump(SimTime::ZERO, &mut out);
            let mut now = SimTime::ZERO;
            let mut guard = 0;
            while !s.is_idle() {
                now += SimDuration::from_millis(10);
                let pkts = std::mem::take(&mut out);
                for mut pkt in pkts {
                    pkt.sent_at = now;
                    assert!(data_len(&pkt).is_some(), "{proto:?} sent non-data");
                    let ack = r.on_data(now, &pkt).expect("ack");
                    now += SimDuration::from_millis(5);
                    assert!(s.handle_packet(now, &ack, &mut out), "{proto:?} ack");
                }
                guard += 1;
                assert!(guard < 1000, "{proto:?} wedged");
            }
            assert_eq!(s.take_completed().len(), 1, "{proto:?}");
            assert_eq!(r.contiguous_bytes(), 100_000, "{proto:?}");
        }
    }
}
