//! Link queues behind a pluggable [`Queue`] discipline trait.
//!
//! The simulator's original model is a drop-tail FIFO sized in bytes — how
//! the paper's lab bottleneck is configured (4x the bandwidth-delay product).
//! The shared-topology experiments add AQM ([`RedQueue`], [`CoDelQueue`]),
//! per-flow fair queuing ([`DrrQueue`]) and a token-bucket ISP shaper
//! ([`TokenBucketQueue`]); all of them implement [`Queue`] so links, the
//! engine, `validate` invariants and `obs` telemetry are discipline-agnostic.
//!
//! ## Contract
//!
//! - [`Queue::enqueue`] offers an arriving packet; a `Dropped` result means
//!   the *arriving* packet was rejected (tail drop or AQM early drop).
//! - [`Queue::dequeue`] asks for the next packet to serialize. AQM
//!   disciplines may *head-drop* packets at this point; those are pushed
//!   into the caller's `dropped` buffer so the engine can account them per
//!   flow. A non-work-conserving discipline (the shaper) may instead return
//!   [`Dequeue::Wait`], telling the engine when to try again.
//! - Every byte offered is eventually accounted exactly once: dequeued,
//!   dropped, or still resident — the `queue-byte-conservation` ledger in
//!   [`QueueStats`] (checked under the `validate` feature).
//!
//! [`RedQueue`]: crate::aqm::RedQueue
//! [`CoDelQueue`]: crate::aqm::CoDelQueue
//! [`DrrQueue`]: crate::fq::DrrQueue
//! [`TokenBucketQueue`]: crate::shaper::TokenBucketQueue

use crate::packet::PacketRef;
use crate::time::SimTime;
use std::collections::VecDeque;

/// Outcome of offering a packet to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueResult {
    /// The packet was accepted.
    Accepted,
    /// The packet was dropped (queue full, or AQM early drop).
    Dropped,
}

/// Outcome of asking a queue for its next packet.
#[derive(Debug, Clone)]
pub enum Dequeue {
    /// Serialize this packet now.
    Packet(PacketRef),
    /// The queue holds packets but none may be sent before the given time
    /// (token-bucket shaping). The engine schedules a link wakeup.
    Wait(SimTime),
    /// The queue is empty.
    Empty,
}

/// Why [`Queue::dequeue_train`] stopped pulling packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainStop {
    /// The queue ran out of packets (after any head drops).
    Empty,
    /// The head packet may not be sent before the given time
    /// (non-work-conserving shaping). Nothing was pulled this call.
    Wait(SimTime),
    /// A packet or byte budget was reached; more packets may be eligible.
    Budget,
}

/// Counters every queue discipline maintains, plus the `validate`-feature
/// byte ledger proving conservation (enqueued = dequeued + dropped +
/// resident) at every hop.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// Total packets dropped since creation (tail and head drops).
    pub drops: u64,
    /// Total bytes dropped since creation.
    pub dropped_bytes: u64,
    /// High-water mark of queue occupancy in bytes.
    pub max_occupied_bytes: u64,
    /// Total bytes ever offered to the queue (validate feature).
    #[cfg(feature = "validate")]
    enqueued_bytes: u64,
    /// Total bytes ever dequeued from the queue (validate feature).
    #[cfg(feature = "validate")]
    dequeued_bytes: u64,
}

impl QueueStats {
    /// An arriving packet was accepted; `occupied` is the occupancy after.
    #[inline]
    pub(crate) fn on_accept(&mut self, bytes: u64, occupied: u64) {
        #[cfg(feature = "validate")]
        {
            self.enqueued_bytes += bytes;
        }
        let _ = bytes;
        self.max_occupied_bytes = self.max_occupied_bytes.max(occupied);
        self.check_conservation(occupied);
    }

    /// An arriving packet was rejected (tail or AQM early drop); `occupied`
    /// is the (unchanged) occupancy.
    #[inline]
    pub(crate) fn on_arrival_drop(&mut self, bytes: u64, occupied: u64) {
        #[cfg(feature = "validate")]
        {
            self.enqueued_bytes += bytes;
        }
        self.drops += 1;
        self.dropped_bytes += bytes;
        self.check_conservation(occupied);
    }

    /// A previously accepted packet was head-dropped at dequeue time;
    /// `occupied` is the occupancy after removal.
    #[inline]
    pub(crate) fn on_head_drop(&mut self, bytes: u64, occupied: u64) {
        self.drops += 1;
        self.dropped_bytes += bytes;
        self.check_conservation(occupied);
    }

    /// A packet was dequeued for transmission; `occupied` is the occupancy
    /// after removal.
    #[inline]
    pub(crate) fn on_dequeue(&mut self, bytes: u64, occupied: u64) {
        #[cfg(feature = "validate")]
        {
            self.dequeued_bytes += bytes;
        }
        let _ = bytes;
        self.check_conservation(occupied);
    }

    /// Byte conservation: every byte offered to the queue is either still
    /// queued, was dequeued, or was dropped. A leak on any path (e.g. a
    /// drop that forgets to account its bytes) breaks the ledger.
    #[cfg(feature = "validate")]
    #[inline]
    fn check_conservation(&self, occupied: u64) {
        crate::invariant!(
            "queue-byte-conservation",
            self.enqueued_bytes == self.dequeued_bytes + self.dropped_bytes + occupied,
            "enqueued {} != dequeued {} + dropped {} + occupied {}",
            self.enqueued_bytes,
            self.dequeued_bytes,
            self.dropped_bytes,
            occupied
        );
    }

    #[cfg(not(feature = "validate"))]
    #[inline(always)]
    fn check_conservation(&self, _occupied: u64) {}

    /// Mutant mode: pretend bytes entered the queue and then vanished —
    /// the classic dropped-byte leak where a rejection path forgets to
    /// credit `dropped_bytes`. Must trip `queue-byte-conservation`.
    #[cfg(feature = "validate")]
    pub(crate) fn mutant_leak_dropped_bytes(&mut self, bytes: u64, occupied: u64) {
        self.enqueued_bytes += bytes;
        self.check_conservation(occupied);
    }
}

/// A queue discipline: what a [`Link`](crate::link::Link) holds between
/// packet arrivals and serialization opportunities.
///
/// See the module docs for the enqueue/dequeue/accounting contract.
pub trait Queue: std::fmt::Debug + Send {
    /// Offer an arriving packet at simulated time `now`.
    fn enqueue(&mut self, now: SimTime, pkt: PacketRef) -> EnqueueResult;

    /// Ask for the next packet to serialize at time `now`. Head-dropped
    /// packets (AQM) are pushed into `dropped` for per-flow accounting.
    fn dequeue(&mut self, now: SimTime, dropped: &mut Vec<PacketRef>) -> Dequeue;

    /// Pull a back-to-back train of up to `max_packets` packets whose
    /// *cumulative* size stays within `max_bytes`, appending them to `out`
    /// in dequeue order. The head packet is always eligible regardless of
    /// `max_bytes` (a train of one is just [`Queue::dequeue`]); each
    /// further packet is pulled only while the running byte total stays
    /// within budget.
    ///
    /// Must behave exactly like repeated [`Queue::dequeue`] calls at the
    /// same `now` — same packets, same order, same head drops, same stats.
    /// The default implementation pulls at most one packet per call, which
    /// is the right conservative choice for disciplines whose dequeue
    /// decision depends on the clock (RED idle aging, CoDel sojourn,
    /// token-bucket refill) or mutates round-robin state (DRR): the engine
    /// re-calls them at each packet's true serialization time. Pure FIFOs
    /// can override with a real multi-pop.
    fn dequeue_train(
        &mut self,
        now: SimTime,
        max_packets: usize,
        max_bytes: u64,
        out: &mut Vec<PacketRef>,
        dropped: &mut Vec<PacketRef>,
    ) -> TrainStop {
        let _ = max_bytes;
        if max_packets == 0 {
            return TrainStop::Budget;
        }
        match self.dequeue(now, dropped) {
            Dequeue::Packet(p) => {
                out.push(p);
                TrainStop::Budget
            }
            Dequeue::Wait(at) => TrainStop::Wait(at),
            Dequeue::Empty => TrainStop::Empty,
        }
    }

    /// Current occupancy in bytes.
    fn occupied_bytes(&self) -> u64;

    /// Number of queued packets.
    fn len(&self) -> usize;

    /// Configured capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Shared drop/occupancy counters.
    fn stats(&self) -> &QueueStats;

    /// Mutable access to the shared counters.
    fn stats_mut(&mut self) -> &mut QueueStats;

    /// True if no packets are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reset the occupancy high-water mark to the current occupancy
    /// (used to measure phases of an experiment separately).
    fn reset_max_occupancy(&mut self) {
        let occ = self.occupied_bytes();
        self.stats_mut().max_occupied_bytes = occ;
    }
}

/// Which queue discipline a link runs, carried by
/// [`LinkConfig`](crate::link::LinkConfig). The capacity in bytes comes from
/// the link config's `queue_bytes`; the discipline holds everything else.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Discipline {
    /// Plain byte-bounded drop-tail FIFO (the legacy behavior).
    #[default]
    DropTail,
    /// Random Early Detection AQM (gentle variant).
    Red(crate::aqm::RedConfig),
    /// CoDel sojourn-time AQM (RFC 8289).
    CoDel(crate::aqm::CoDelConfig),
    /// Deficit-round-robin per-flow fair queuing.
    Drr(crate::fq::DrrConfig),
    /// Token-bucket rate shaper over a FIFO (non-work-conserving).
    TokenBucket(crate::shaper::TokenBucketConfig),
}

impl Discipline {
    /// Construct the discipline's queue with the given byte capacity.
    pub fn build(self, capacity_bytes: u64) -> Box<dyn Queue> {
        match self {
            Discipline::DropTail => Box::new(DropTailQueue::new(capacity_bytes)),
            Discipline::Red(cfg) => Box::new(crate::aqm::RedQueue::new(capacity_bytes, cfg)),
            Discipline::CoDel(cfg) => Box::new(crate::aqm::CoDelQueue::new(capacity_bytes, cfg)),
            Discipline::Drr(cfg) => Box::new(crate::fq::DrrQueue::new(capacity_bytes, cfg)),
            Discipline::TokenBucket(cfg) => {
                Box::new(crate::shaper::TokenBucketQueue::new(capacity_bytes, cfg))
            }
        }
    }
}

/// A drop-tail FIFO queue with a byte-capacity limit.
#[derive(Debug, Clone)]
pub struct DropTailQueue {
    capacity_bytes: u64,
    occupied_bytes: u64,
    packets: VecDeque<PacketRef>,
    stats: QueueStats,
}

impl DropTailQueue {
    /// Create a queue holding at most `capacity_bytes` of packets.
    ///
    /// # Panics
    /// Panics if `capacity_bytes` is zero: a zero-capacity queue would drop
    /// every packet and almost certainly indicates a misconfigured topology.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        DropTailQueue {
            capacity_bytes,
            occupied_bytes: 0,
            packets: VecDeque::new(),
            stats: QueueStats::default(),
        }
    }
}

impl Queue for DropTailQueue {
    /// Offer a packet. Drop-tail: reject if it would exceed capacity.
    fn enqueue(&mut self, _now: SimTime, pkt: PacketRef) -> EnqueueResult {
        if self.occupied_bytes + pkt.size > self.capacity_bytes {
            self.stats.on_arrival_drop(pkt.size, self.occupied_bytes);
            EnqueueResult::Dropped
        } else {
            self.occupied_bytes += pkt.size;
            self.stats.on_accept(pkt.size, self.occupied_bytes);
            self.packets.push_back(pkt);
            EnqueueResult::Accepted
        }
    }

    fn dequeue(&mut self, _now: SimTime, _dropped: &mut Vec<PacketRef>) -> Dequeue {
        let Some(pkt) = self.packets.pop_front() else {
            return Dequeue::Empty;
        };
        self.occupied_bytes -= pkt.size;
        self.stats.on_dequeue(pkt.size, self.occupied_bytes);
        Dequeue::Packet(pkt)
    }

    /// True multi-pop: a FIFO's dequeue ignores the clock, so pulling the
    /// whole train at once is byte-identical to repeated single dequeues.
    fn dequeue_train(
        &mut self,
        _now: SimTime,
        max_packets: usize,
        max_bytes: u64,
        out: &mut Vec<PacketRef>,
        _dropped: &mut Vec<PacketRef>,
    ) -> TrainStop {
        let mut popped = 0usize;
        let mut bytes = 0u64;
        while popped < max_packets {
            let Some(&head) = self.packets.front() else {
                return TrainStop::Empty;
            };
            if popped > 0 && bytes.saturating_add(head.size) > max_bytes {
                return TrainStop::Budget;
            }
            self.packets.pop_front();
            bytes += head.size;
            self.occupied_bytes -= head.size;
            self.stats.on_dequeue(head.size, self.occupied_bytes);
            out.push(head);
            popped += 1;
        }
        TrainStop::Budget
    }

    fn occupied_bytes(&self) -> u64 {
        self.occupied_bytes
    }

    fn len(&self) -> usize {
        self.packets.len()
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut QueueStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketId};

    fn pkt(size: u64) -> PacketRef {
        PacketRef {
            id: PacketId(0),
            size,
            flow: FlowId(0),
        }
    }

    fn pkt_id(id: u32, size: u64) -> PacketRef {
        PacketRef {
            id: PacketId(id),
            size,
            flow: FlowId(0),
        }
    }

    fn deq(q: &mut dyn Queue) -> Option<PacketRef> {
        let mut dropped = Vec::new();
        match q.dequeue(SimTime::ZERO, &mut dropped) {
            Dequeue::Packet(p) => Some(p),
            _ => None,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(10_000);
        for id in 0..3u32 {
            assert_eq!(
                q.enqueue(SimTime::ZERO, pkt_id(id, 100)),
                EnqueueResult::Accepted
            );
        }
        for id in 0..3u32 {
            let p = deq(&mut q).unwrap();
            assert_eq!(p.id, PacketId(id));
        }
        assert!(deq(&mut q).is_none());
    }

    #[test]
    fn train_matches_repeated_dequeues() {
        let mut qa = DropTailQueue::new(100_000);
        let mut qb = DropTailQueue::new(100_000);
        for id in 0..10u32 {
            qa.enqueue(SimTime::ZERO, pkt_id(id, 100 + id as u64));
            qb.enqueue(SimTime::ZERO, pkt_id(id, 100 + id as u64));
        }
        let mut train = Vec::new();
        let mut dropped = Vec::new();
        // Budget admits the first four packets (100+101+102+103 = 406).
        let stop = qa.dequeue_train(SimTime::ZERO, 64, 406, &mut train, &mut dropped);
        assert_eq!(stop, TrainStop::Budget);
        assert_eq!(train.len(), 4);
        for want in &train {
            let got = deq(&mut qb).unwrap();
            assert_eq!(got, *want);
        }
        assert_eq!(qa.occupied_bytes(), qb.occupied_bytes());
        assert_eq!(qa.len(), qb.len());
    }

    #[test]
    fn train_head_is_budget_exempt() {
        let mut q = DropTailQueue::new(100_000);
        q.enqueue(SimTime::ZERO, pkt(1_500));
        q.enqueue(SimTime::ZERO, pkt(1_500));
        let mut train = Vec::new();
        let mut dropped = Vec::new();
        // A zero-byte budget still releases the head packet — a train of
        // one is exactly a plain dequeue.
        let stop = q.dequeue_train(SimTime::ZERO, 64, 0, &mut train, &mut dropped);
        assert_eq!(stop, TrainStop::Budget);
        assert_eq!(train.len(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn train_reports_empty_on_drain() {
        let mut q = DropTailQueue::new(100_000);
        q.enqueue(SimTime::ZERO, pkt(100));
        let mut train = Vec::new();
        let mut dropped = Vec::new();
        let stop = q.dequeue_train(SimTime::ZERO, 64, u64::MAX, &mut train, &mut dropped);
        assert_eq!(stop, TrainStop::Empty);
        assert_eq!(train.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn drops_when_full() {
        let mut q = DropTailQueue::new(250);
        assert_eq!(q.enqueue(SimTime::ZERO, pkt(100)), EnqueueResult::Accepted);
        assert_eq!(q.enqueue(SimTime::ZERO, pkt(100)), EnqueueResult::Accepted);
        // Third packet would exceed 250 bytes.
        assert_eq!(q.enqueue(SimTime::ZERO, pkt(100)), EnqueueResult::Dropped);
        assert_eq!(q.stats().drops, 1);
        assert_eq!(q.stats().dropped_bytes, 100);
        assert_eq!(q.len(), 2);
        // Dequeuing frees space again.
        deq(&mut q);
        assert_eq!(q.enqueue(SimTime::ZERO, pkt(100)), EnqueueResult::Accepted);
    }

    #[test]
    fn occupancy_accounting() {
        let mut q = DropTailQueue::new(1_000);
        q.enqueue(SimTime::ZERO, pkt(300));
        q.enqueue(SimTime::ZERO, pkt(200));
        assert_eq!(q.occupied_bytes(), 500);
        assert_eq!(q.stats().max_occupied_bytes, 500);
        deq(&mut q);
        assert_eq!(q.occupied_bytes(), 200);
        // High-water mark persists after dequeue.
        assert_eq!(q.stats().max_occupied_bytes, 500);
        q.reset_max_occupancy();
        assert_eq!(q.stats().max_occupied_bytes, 200);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        DropTailQueue::new(0);
    }

    #[test]
    fn discipline_default_builds_drop_tail() {
        let q = Discipline::default().build(10_000);
        assert_eq!(q.capacity_bytes(), 10_000);
        assert!(q.is_empty());
    }

    /// One of every discipline, for train/dequeue equivalence sweeps.
    fn all_disciplines() -> Vec<Discipline> {
        use crate::units::Rate;
        vec![
            Discipline::DropTail,
            Discipline::Red(crate::aqm::RedConfig::default()),
            Discipline::CoDel(crate::aqm::CoDelConfig::default()),
            Discipline::Drr(crate::fq::DrrConfig::default()),
            Discipline::TokenBucket(crate::shaper::TokenBucketConfig::new(
                Rate::from_mbps(8.0),
                4_000,
            )),
        ]
    }

    /// Pull up to `want` packets via repeated `dequeue_train` calls (how
    /// the engine consumes the API), stopping on Wait/Empty.
    fn drain_by_train(
        q: &mut dyn Queue,
        now: SimTime,
        want: usize,
        out: &mut Vec<PacketRef>,
        dropped: &mut Vec<PacketRef>,
    ) {
        while out.len() < want {
            let before = out.len();
            let stop = q.dequeue_train(now, want - out.len(), u64::MAX, out, dropped);
            match stop {
                TrainStop::Empty | TrainStop::Wait(_) => break,
                TrainStop::Budget => {
                    // With an unlimited byte budget, Budget means the
                    // packet budget bound the call; progress is mandatory.
                    assert!(out.len() > before, "Budget stop without progress");
                }
            }
        }
    }

    /// Pull up to `want` packets via repeated single `dequeue` calls (the
    /// reference semantics `dequeue_train` must reproduce).
    fn drain_by_dequeue(
        q: &mut dyn Queue,
        now: SimTime,
        want: usize,
        out: &mut Vec<PacketRef>,
        dropped: &mut Vec<PacketRef>,
    ) {
        while out.len() < want {
            match q.dequeue(now, dropped) {
                Dequeue::Packet(p) => out.push(p),
                Dequeue::Wait(_) | Dequeue::Empty => break,
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(24))]

        /// For every discipline, an interleaved enqueue/drain schedule
        /// consumed through `dequeue_train` must be packet-for-packet
        /// identical to the same schedule consumed through repeated
        /// `dequeue` calls: same packets, same order, same head drops,
        /// same occupancy afterwards.
        #[test]
        fn train_equals_repeated_dequeue_for_every_discipline(
            ops in proptest::collection::vec(
                // (enqueue?, size, flow, time step µs, drain budget)
                (0u8..2, 64u64..1500, 0u64..4, 0u64..2_000, 1usize..6),
                4..80usize,
            )
        ) {
            for d in all_disciplines() {
                let mut qa = d.build(20_000);
                let mut qb = d.build(20_000);
                let mut now = SimTime::ZERO;
                let mut next_id = 0u32;
                for &(kind, size, flow, dt_us, want) in &ops {
                    now += crate::time::SimDuration::from_micros(dt_us);
                    if kind == 0 {
                        let p = PacketRef {
                            id: PacketId(next_id),
                            size,
                            flow: FlowId(flow),
                        };
                        next_id += 1;
                        let ra = qa.enqueue(now, p);
                        let rb = qb.enqueue(now, p);
                        proptest::prop_assert_eq!(ra, rb, "{:?}", d);
                    } else {
                        let (mut outa, mut da) = (Vec::new(), Vec::new());
                        let (mut outb, mut db) = (Vec::new(), Vec::new());
                        drain_by_train(&mut *qa, now, want, &mut outa, &mut da);
                        drain_by_dequeue(&mut *qb, now, want, &mut outb, &mut db);
                        proptest::prop_assert_eq!(&outa, &outb, "{:?}", d);
                        proptest::prop_assert_eq!(&da, &db, "{:?}", d);
                    }
                    proptest::prop_assert_eq!(qa.len(), qb.len(), "{:?}", d);
                    proptest::prop_assert_eq!(
                        qa.occupied_bytes(),
                        qb.occupied_bytes(),
                        "{:?}",
                        d
                    );
                }
            }
        }

        /// The drop-tail multi-pop honors the byte budget exactly: the head
        /// is always eligible, every further packet keeps the cumulative
        /// size within budget, and the train is the *maximal* such prefix.
        #[test]
        fn drop_tail_train_byte_budget_is_maximal_prefix(
            sizes in proptest::collection::vec(64u64..1500, 1..40usize),
            max_packets in 1usize..48,
            max_bytes in 0u64..20_000,
        ) {
            let mut q = DropTailQueue::new(1_000_000);
            for (i, &s) in sizes.iter().enumerate() {
                q.enqueue(
                    SimTime::ZERO,
                    PacketRef { id: PacketId(i as u32), size: s, flow: FlowId(0) },
                );
            }
            let (mut out, mut dropped) = (Vec::new(), Vec::new());
            let stop = q.dequeue_train(
                SimTime::ZERO, max_packets, max_bytes, &mut out, &mut dropped,
            );
            proptest::prop_assert!(dropped.is_empty());
            proptest::prop_assert!(!out.is_empty(), "head must always be eligible");
            proptest::prop_assert!(out.len() <= max_packets);
            // In-order prefix of the enqueued sequence.
            for (i, p) in out.iter().enumerate() {
                proptest::prop_assert_eq!(p.id, PacketId(i as u32));
                proptest::prop_assert_eq!(p.size, sizes[i]);
            }
            let pulled: u64 = out.iter().map(|p| p.size).sum();
            if out.len() > 1 {
                proptest::prop_assert!(pulled <= max_bytes);
            }
            match stop {
                TrainStop::Empty => proptest::prop_assert_eq!(out.len(), sizes.len()),
                TrainStop::Budget => {
                    // Maximal: either the packet budget bound, or pulling
                    // the next packet would have burst the byte budget.
                    if out.len() < max_packets {
                        proptest::prop_assert!(out.len() < sizes.len());
                        proptest::prop_assert!(
                            pulled + sizes[out.len()] > max_bytes,
                            "stopped early with budget headroom"
                        );
                    }
                }
                TrainStop::Wait(_) => proptest::prop_assert!(false, "FIFO cannot wait"),
            }
        }
    }
}
