//! Experiment specifications: one serde-round-trippable schema shared by
//! the `sammy-serve` HTTP API, the `sammy-sim` CLI, and the bench
//! harnesses.
//!
//! Before this crate, `LabConfig`, `TcpConfig`, `ExperimentConfig`, and the
//! CLI's string-matched flags each re-declared overlapping fields; every
//! consumer now builds its config *from* these types. JSON is the wire
//! format (see [`json`] — the serde shim is a no-op, so the codec is
//! hand-rolled), with three schema rules applied uniformly:
//!
//! - **unknown fields are rejected** (`deny_unknown_fields` semantics): a
//!   typo in a submitted spec is a 4xx, never a silently-defaulted run;
//! - **missing fields take defaults**, so a minimal `{}` is a valid spec;
//! - **writing is deterministic**: field order is fixed and floats use
//!   shortest round-trip form, so a spec (or a search checkpoint built
//!   from one) re-renders byte-identically after any number of
//!   parse/write cycles.

pub mod json;

use json::{obj, Value};
use netsim::{DumbbellConfig, Rate, SimDuration, SimError};
use serde::{Deserialize, Serialize};
use transport::{CcAlgorithm, Protocol};

fn unknown_field(
    what: &'static str,
    known: &[&str],
    fields: &[(String, Value)],
) -> Option<SimError> {
    fields
        .iter()
        .find(|(k, _)| !known.contains(&k.as_str()))
        .map(|(k, _)| SimError::Parse {
            what,
            input: k.clone(),
            reason: format!("unknown field `{k}` (known fields: {})", known.join(", ")),
        })
}

fn want_obj<'v>(what: &'static str, v: &'v Value) -> Result<&'v [(String, Value)], SimError> {
    v.as_obj().ok_or_else(|| SimError::Parse {
        what,
        input: v.to_string(),
        reason: "expected a JSON object".into(),
    })
}

fn field_err(what: &'static str, key: &str, v: &Value, want: &str) -> SimError {
    SimError::Parse {
        what,
        input: v.to_string(),
        reason: format!("field `{key}`: expected {want}"),
    }
}

fn get_f64(what: &'static str, v: &Value, key: &str, default: f64) -> Result<f64, SimError> {
    match v.get(key) {
        None => Ok(default),
        Some(f) => f
            .as_f64()
            .ok_or_else(|| field_err(what, key, f, "a number")),
    }
}

fn get_u64(what: &'static str, v: &Value, key: &str, default: u64) -> Result<u64, SimError> {
    match v.get(key) {
        None => Ok(default),
        Some(f) => f
            .as_u64()
            .ok_or_else(|| field_err(what, key, f, "a non-negative integer")),
    }
}

fn get_usize(what: &'static str, v: &Value, key: &str, default: usize) -> Result<usize, SimError> {
    get_u64(what, v, key, default as u64).map(|n| n as usize)
}

fn get_bool(what: &'static str, v: &Value, key: &str, default: bool) -> Result<bool, SimError> {
    match v.get(key) {
        None => Ok(default),
        Some(f) => f
            .as_bool()
            .ok_or_else(|| field_err(what, key, f, "a boolean")),
    }
}

fn get_string(what: &'static str, v: &Value, key: &str, default: &str) -> Result<String, SimError> {
    match v.get(key) {
        None => Ok(default.to_string()),
        Some(f) => f
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| field_err(what, key, f, "a string")),
    }
}

/// Wire protocol + congestion control + pacing burst for the video sender.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransportSpec {
    /// Wire protocol (`"tcp"` or `"quic"`).
    pub protocol: Protocol,
    /// Congestion control (`"reno"`, `"cubic"`, `"bbr"`, `"ledbat"`).
    pub cc: CcAlgorithm,
    /// Pacer burst allowance in packets.
    pub burst_packets: u32,
}

impl Default for TransportSpec {
    fn default() -> Self {
        TransportSpec {
            protocol: Protocol::Tcp,
            cc: CcAlgorithm::Reno,
            burst_packets: 4,
        }
    }
}

impl TransportSpec {
    const WHAT: &'static str = "TransportSpec";
    const FIELDS: &'static [&'static str] = &["protocol", "cc", "burst_packets"];

    /// Render as a JSON value.
    pub fn to_json(&self) -> Value {
        obj(vec![
            ("protocol", Value::Str(self.protocol.to_string())),
            ("cc", Value::Str(self.cc.to_string())),
            ("burst_packets", Value::Num(self.burst_packets as f64)),
        ])
    }

    /// Parse from a JSON value; missing fields default, unknown fields err.
    pub fn from_json(v: &Value) -> Result<Self, SimError> {
        let fields = want_obj(Self::WHAT, v)?;
        if let Some(e) = unknown_field(Self::WHAT, Self::FIELDS, fields) {
            return Err(e);
        }
        let d = TransportSpec::default();
        let protocol = match v.get("protocol") {
            None => d.protocol,
            Some(f) => f
                .as_str()
                .ok_or_else(|| field_err(Self::WHAT, "protocol", f, "a string"))?
                .parse()?,
        };
        let cc = match v.get("cc") {
            None => d.cc,
            Some(f) => f
                .as_str()
                .ok_or_else(|| field_err(Self::WHAT, "cc", f, "a string"))?
                .parse()?,
        };
        let burst_packets = get_u64(Self::WHAT, v, "burst_packets", d.burst_packets as u64)? as u32;
        Ok(TransportSpec {
            protocol,
            cc,
            burst_packets,
        })
    }
}

/// Bottleneck network shape for lab (dumbbell) experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Bottleneck rate in Mbps.
    pub rate_mbps: f64,
    /// Path round-trip propagation time in ms.
    pub rtt_ms: f64,
    /// Bottleneck queue size as a multiple of the BDP.
    pub queue_bdp: f64,
    /// Simulated run length in seconds.
    pub run_secs: u64,
}

impl Default for NetworkSpec {
    /// The paper's lab setup (§6): 40 Mbps, 5 ms RTT, 4x BDP queue.
    fn default() -> Self {
        NetworkSpec {
            rate_mbps: 40.0,
            rtt_ms: 5.0,
            queue_bdp: 4.0,
            run_secs: 120,
        }
    }
}

impl NetworkSpec {
    const WHAT: &'static str = "NetworkSpec";
    const FIELDS: &'static [&'static str] = &["rate_mbps", "rtt_ms", "queue_bdp", "run_secs"];

    /// Render as a JSON value.
    pub fn to_json(&self) -> Value {
        obj(vec![
            ("rate_mbps", Value::Num(self.rate_mbps)),
            ("rtt_ms", Value::Num(self.rtt_ms)),
            ("queue_bdp", Value::Num(self.queue_bdp)),
            ("run_secs", Value::Num(self.run_secs as f64)),
        ])
    }

    /// Parse from a JSON value; missing fields default, unknown fields err.
    pub fn from_json(v: &Value) -> Result<Self, SimError> {
        let fields = want_obj(Self::WHAT, v)?;
        if let Some(e) = unknown_field(Self::WHAT, Self::FIELDS, fields) {
            return Err(e);
        }
        let d = NetworkSpec::default();
        Ok(NetworkSpec {
            rate_mbps: get_f64(Self::WHAT, v, "rate_mbps", d.rate_mbps)?,
            rtt_ms: get_f64(Self::WHAT, v, "rtt_ms", d.rtt_ms)?,
            queue_bdp: get_f64(Self::WHAT, v, "queue_bdp", d.queue_bdp)?,
            run_secs: get_u64(Self::WHAT, v, "run_secs", d.run_secs)?,
        })
    }

    /// The dumbbell this network describes, with `pairs` host pairs.
    pub fn dumbbell(&self, pairs: usize) -> DumbbellConfig {
        DumbbellConfig {
            bottleneck_rate: Rate::from_mbps(self.rate_mbps),
            rtt: SimDuration::from_secs_f64(self.rtt_ms / 1000.0),
            queue_bdp_multiple: self.queue_bdp,
            pairs,
            ..DumbbellConfig::default()
        }
    }

    /// The run length as a simulation duration.
    pub fn run_for(&self) -> SimDuration {
        SimDuration::from_secs(self.run_secs)
    }
}

/// Which algorithm variant an arm runs — the spec-level mirror of
/// `abtest::Arm` (tagged by `kind` on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArmSpec {
    /// Production MPC, all-samples history, no pacing.
    Production,
    /// Sammy with the given pace multipliers.
    Sammy {
        /// Pace multiplier at empty buffer.
        c0: f64,
        /// Pace multiplier at full buffer.
        c1: f64,
    },
    /// Sammy's initial-phase changes only, no pacing.
    InitialOnly,
    /// Production ABR with a constant pace multiplier on every chunk.
    NaivePaced {
        /// Constant pace multiplier.
        multiplier: f64,
    },
}

impl ArmSpec {
    const WHAT: &'static str = "ArmSpec";

    /// Render as a JSON value: `{"kind":"sammy","c0":3.2,"c1":2.8}` etc.
    pub fn to_json(&self) -> Value {
        match *self {
            ArmSpec::Production => obj(vec![("kind", Value::Str("production".into()))]),
            ArmSpec::Sammy { c0, c1 } => obj(vec![
                ("kind", Value::Str("sammy".into())),
                ("c0", Value::Num(c0)),
                ("c1", Value::Num(c1)),
            ]),
            ArmSpec::InitialOnly => obj(vec![("kind", Value::Str("initial-only".into()))]),
            ArmSpec::NaivePaced { multiplier } => obj(vec![
                ("kind", Value::Str("naive-paced".into())),
                ("multiplier", Value::Num(multiplier)),
            ]),
        }
    }

    /// Parse from a JSON value. The `kind` tag is required; per-kind
    /// numeric fields default to the paper's production values.
    pub fn from_json(v: &Value) -> Result<Self, SimError> {
        let fields = want_obj(Self::WHAT, v)?;
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| SimError::Parse {
                what: Self::WHAT,
                input: v.to_string(),
                reason: "missing `kind` tag (production, sammy, initial-only, naive-paced)".into(),
            })?;
        let known: &[&str] = match kind {
            "production" | "initial-only" => &["kind"],
            "sammy" => &["kind", "c0", "c1"],
            "naive-paced" => &["kind", "multiplier"],
            other => {
                return Err(SimError::Parse {
                    what: Self::WHAT,
                    input: other.to_string(),
                    reason: "expected production, sammy, initial-only, or naive-paced".into(),
                })
            }
        };
        if let Some(e) = unknown_field(Self::WHAT, known, fields) {
            return Err(e);
        }
        Ok(match kind {
            "production" => ArmSpec::Production,
            "initial-only" => ArmSpec::InitialOnly,
            "sammy" => ArmSpec::Sammy {
                c0: get_f64(Self::WHAT, v, "c0", 3.2)?,
                c1: get_f64(Self::WHAT, v, "c1", 2.8)?,
            },
            _ => ArmSpec::NaivePaced {
                multiplier: get_f64(Self::WHAT, v, "multiplier", 4.0)?,
            },
        })
    }
}

/// A complete A/B experiment: arms, population sizing, seeds, and the
/// network/transport substrate. The single source of truth consumed by
/// `POST /runs`, `sammy-sim`, and `bench::{lab,matrix}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Human-readable experiment name (labels reports and run dirs).
    pub name: String,
    /// Control arm.
    pub control: ArmSpec,
    /// Treatment arm.
    pub treatment: ArmSpec,
    /// Users per arm.
    pub users_per_arm: usize,
    /// Pre-experiment sessions per user (history warm-up).
    pub pre_sessions: usize,
    /// Experiment sessions per user.
    pub sessions_per_user: usize,
    /// Seed for population and session randomness.
    pub seed: u64,
    /// Bootstrap replicates for CIs.
    pub bootstrap_reps: usize,
    /// Worker threads (0 = all cores); never affects results.
    pub threads: usize,
    /// Users per shard for the streaming runner.
    pub shard_size: usize,
    /// Use the trimmed-down population model (fast CI runs).
    pub light_population: bool,
    /// Bottleneck network shape (lab harnesses only).
    pub network: NetworkSpec,
    /// Transport substrate (lab harnesses only).
    pub transport: TransportSpec,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            name: "experiment".into(),
            control: ArmSpec::Production,
            treatment: ArmSpec::Sammy { c0: 3.2, c1: 2.8 },
            users_per_arm: 400,
            pre_sessions: 3,
            sessions_per_user: 4,
            seed: 1,
            bootstrap_reps: 600,
            threads: 0,
            shard_size: 256,
            light_population: false,
            network: NetworkSpec::default(),
            transport: TransportSpec::default(),
        }
    }
}

impl ExperimentSpec {
    const WHAT: &'static str = "ExperimentSpec";
    const FIELDS: &'static [&'static str] = &[
        "name",
        "control",
        "treatment",
        "users_per_arm",
        "pre_sessions",
        "sessions_per_user",
        "seed",
        "bootstrap_reps",
        "threads",
        "shard_size",
        "light_population",
        "network",
        "transport",
    ];

    /// Render as a JSON value (fixed field order — deterministic bytes).
    pub fn to_json(&self) -> Value {
        obj(vec![
            ("name", Value::Str(self.name.clone())),
            ("control", self.control.to_json()),
            ("treatment", self.treatment.to_json()),
            ("users_per_arm", Value::Num(self.users_per_arm as f64)),
            ("pre_sessions", Value::Num(self.pre_sessions as f64)),
            (
                "sessions_per_user",
                Value::Num(self.sessions_per_user as f64),
            ),
            ("seed", Value::Num(self.seed as f64)),
            ("bootstrap_reps", Value::Num(self.bootstrap_reps as f64)),
            ("threads", Value::Num(self.threads as f64)),
            ("shard_size", Value::Num(self.shard_size as f64)),
            ("light_population", Value::Bool(self.light_population)),
            ("network", self.network.to_json()),
            ("transport", self.transport.to_json()),
        ])
    }

    /// Parse from a JSON value; missing fields default, unknown fields err.
    pub fn from_json(v: &Value) -> Result<Self, SimError> {
        let fields = want_obj(Self::WHAT, v)?;
        if let Some(e) = unknown_field(Self::WHAT, Self::FIELDS, fields) {
            return Err(e);
        }
        let d = ExperimentSpec::default();
        Ok(ExperimentSpec {
            name: get_string(Self::WHAT, v, "name", &d.name)?,
            control: match v.get("control") {
                None => d.control,
                Some(f) => ArmSpec::from_json(f)?,
            },
            treatment: match v.get("treatment") {
                None => d.treatment,
                Some(f) => ArmSpec::from_json(f)?,
            },
            users_per_arm: get_usize(Self::WHAT, v, "users_per_arm", d.users_per_arm)?,
            pre_sessions: get_usize(Self::WHAT, v, "pre_sessions", d.pre_sessions)?,
            sessions_per_user: get_usize(Self::WHAT, v, "sessions_per_user", d.sessions_per_user)?,
            seed: get_u64(Self::WHAT, v, "seed", d.seed)?,
            bootstrap_reps: get_usize(Self::WHAT, v, "bootstrap_reps", d.bootstrap_reps)?,
            threads: get_usize(Self::WHAT, v, "threads", d.threads)?,
            shard_size: get_usize(Self::WHAT, v, "shard_size", d.shard_size)?,
            light_population: get_bool(Self::WHAT, v, "light_population", d.light_population)?,
            network: match v.get("network") {
                None => d.network,
                Some(f) => NetworkSpec::from_json(f)?,
            },
            transport: match v.get("transport") {
                None => d.transport,
                Some(f) => TransportSpec::from_json(f)?,
            },
        })
    }

    /// Parse from a JSON string.
    pub fn from_json_str(s: &str) -> Result<Self, SimError> {
        Self::from_json(&json::parse(s)?)
    }
}

/// QoE guardrails a candidate arm must satisfy (percent-change bounds vs
/// control) — the spec-level mirror of `abtest::optimize::QoeGuards`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardSpec {
    /// Lowest acceptable VMAF change (%).
    pub min_vmaf_pct: f64,
    /// Highest acceptable play-delay change (%).
    pub max_play_delay_pct: f64,
    /// Highest acceptable rebuffer-rate change (%).
    pub max_rebuffer_pct: f64,
}

impl Default for GuardSpec {
    fn default() -> Self {
        GuardSpec {
            min_vmaf_pct: -0.1,
            max_play_delay_pct: 1.0,
            max_rebuffer_pct: 5.0,
        }
    }
}

impl GuardSpec {
    const WHAT: &'static str = "GuardSpec";
    const FIELDS: &'static [&'static str] =
        &["min_vmaf_pct", "max_play_delay_pct", "max_rebuffer_pct"];

    /// Render as a JSON value.
    pub fn to_json(&self) -> Value {
        obj(vec![
            ("min_vmaf_pct", Value::Num(self.min_vmaf_pct)),
            ("max_play_delay_pct", Value::Num(self.max_play_delay_pct)),
            ("max_rebuffer_pct", Value::Num(self.max_rebuffer_pct)),
        ])
    }

    /// Parse from a JSON value; missing fields default, unknown fields err.
    pub fn from_json(v: &Value) -> Result<Self, SimError> {
        let fields = want_obj(Self::WHAT, v)?;
        if let Some(e) = unknown_field(Self::WHAT, Self::FIELDS, fields) {
            return Err(e);
        }
        let d = GuardSpec::default();
        Ok(GuardSpec {
            min_vmaf_pct: get_f64(Self::WHAT, v, "min_vmaf_pct", d.min_vmaf_pct)?,
            max_play_delay_pct: get_f64(Self::WHAT, v, "max_play_delay_pct", d.max_play_delay_pct)?,
            max_rebuffer_pct: get_f64(Self::WHAT, v, "max_rebuffer_pct", d.max_rebuffer_pct)?,
        })
    }
}

/// One `(c0, c1)` candidate point in a search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArmPoint {
    /// Pace multiplier at empty buffer.
    pub c0: f64,
    /// Pace multiplier at full buffer.
    pub c1: f64,
}

impl ArmPoint {
    const WHAT: &'static str = "ArmPoint";
    const FIELDS: &'static [&'static str] = &["c0", "c1"];

    /// Render as a JSON value.
    pub fn to_json(&self) -> Value {
        obj(vec![
            ("c0", Value::Num(self.c0)),
            ("c1", Value::Num(self.c1)),
        ])
    }

    /// Parse from a JSON value. Both coordinates are required.
    pub fn from_json(v: &Value) -> Result<Self, SimError> {
        let fields = want_obj(Self::WHAT, v)?;
        if let Some(e) = unknown_field(Self::WHAT, Self::FIELDS, fields) {
            return Err(e);
        }
        let need = |key: &'static str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| SimError::Parse {
                    what: Self::WHAT,
                    input: v.to_string(),
                    reason: format!("field `{key}` is required and must be a number"),
                })
        };
        Ok(ArmPoint {
            c0: need("c0")?,
            c1: need("c1")?,
        })
    }
}

/// A successive-halving `(c0, c1)` search: candidate arms, rung sizing,
/// QoE guards, and the base experiment every evaluation derives from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpec {
    /// Human-readable search name.
    pub name: String,
    /// Candidate `(c0, c1)` arms entering rung 0.
    pub arms: Vec<ArmPoint>,
    /// Users per arm in rung 0; each rung multiplies this by `eta`.
    pub initial_users: usize,
    /// Halving factor: survivors per rung = ceil(n / eta).
    pub eta: usize,
    /// Number of rungs.
    pub rungs: usize,
    /// QoE guardrails pruning candidates early.
    pub guards: GuardSpec,
    /// Base experiment each evaluation derives from (`users_per_arm` and
    /// `treatment` are overridden per rung/arm; everything else applies).
    pub base: ExperimentSpec,
}

impl Default for SearchSpec {
    fn default() -> Self {
        SearchSpec {
            name: "search".into(),
            arms: Vec::new(),
            initial_users: 32,
            eta: 2,
            rungs: 3,
            guards: GuardSpec::default(),
            base: ExperimentSpec::default(),
        }
    }
}

impl SearchSpec {
    const WHAT: &'static str = "SearchSpec";
    const FIELDS: &'static [&'static str] = &[
        "name",
        "arms",
        "initial_users",
        "eta",
        "rungs",
        "guards",
        "base",
    ];

    /// Render as a JSON value (fixed field order — deterministic bytes).
    pub fn to_json(&self) -> Value {
        obj(vec![
            ("name", Value::Str(self.name.clone())),
            (
                "arms",
                Value::Arr(self.arms.iter().map(ArmPoint::to_json).collect()),
            ),
            ("initial_users", Value::Num(self.initial_users as f64)),
            ("eta", Value::Num(self.eta as f64)),
            ("rungs", Value::Num(self.rungs as f64)),
            ("guards", self.guards.to_json()),
            ("base", self.base.to_json()),
        ])
    }

    /// Parse from a JSON value; missing fields default, unknown fields err.
    pub fn from_json(v: &Value) -> Result<Self, SimError> {
        let fields = want_obj(Self::WHAT, v)?;
        if let Some(e) = unknown_field(Self::WHAT, Self::FIELDS, fields) {
            return Err(e);
        }
        let d = SearchSpec::default();
        let arms = match v.get("arms") {
            None => d.arms,
            Some(f) => f
                .as_arr()
                .ok_or_else(|| field_err(Self::WHAT, "arms", f, "an array"))?
                .iter()
                .map(ArmPoint::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(SearchSpec {
            name: get_string(Self::WHAT, v, "name", &d.name)?,
            arms,
            initial_users: get_usize(Self::WHAT, v, "initial_users", d.initial_users)?,
            eta: get_usize(Self::WHAT, v, "eta", d.eta)?,
            rungs: get_usize(Self::WHAT, v, "rungs", d.rungs)?,
            guards: match v.get("guards") {
                None => d.guards,
                Some(f) => GuardSpec::from_json(f)?,
            },
            base: match v.get("base") {
                None => d.base,
                Some(f) => ExperimentSpec::from_json(f)?,
            },
        })
    }

    /// Parse from a JSON string.
    pub fn from_json_str(s: &str) -> Result<Self, SimError> {
        Self::from_json(&json::parse(s)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_experiment() -> ExperimentSpec {
        // Every field away from its default, so a dropped field in either
        // direction of the codec fails the equality check.
        ExperimentSpec {
            name: "full \"quoted\" name".into(),
            control: ArmSpec::InitialOnly,
            treatment: ArmSpec::NaivePaced { multiplier: 4.5 },
            users_per_arm: 17,
            pre_sessions: 5,
            sessions_per_user: 7,
            seed: u64::from(u32::MAX) + 12,
            bootstrap_reps: 321,
            threads: 3,
            shard_size: 64,
            light_population: true,
            network: NetworkSpec {
                rate_mbps: 17.25,
                rtt_ms: 41.5,
                queue_bdp: 2.75,
                run_secs: 77,
            },
            transport: TransportSpec {
                protocol: Protocol::Quic,
                cc: CcAlgorithm::Cubic,
                burst_packets: 9,
            },
        }
    }

    #[test]
    fn experiment_spec_round_trips_every_field() {
        let spec = full_experiment();
        let text = spec.to_json().to_string();
        let back = ExperimentSpec::from_json_str(&text).unwrap();
        assert_eq!(back, spec);
        // And the re-render is byte-identical (deterministic writer).
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn arm_spec_round_trips_all_kinds() {
        for arm in [
            ArmSpec::Production,
            ArmSpec::Sammy { c0: 3.2, c1: 2.8 },
            ArmSpec::Sammy {
                c0: 1.0 / 3.0,
                c1: 0.1 + 0.2,
            },
            ArmSpec::InitialOnly,
            ArmSpec::NaivePaced { multiplier: 4.0 },
        ] {
            let text = arm.to_json().to_string();
            assert_eq!(
                ArmSpec::from_json(&json::parse(&text).unwrap()).unwrap(),
                arm
            );
        }
    }

    #[test]
    fn search_spec_round_trips_every_field() {
        let spec = SearchSpec {
            name: "tune".into(),
            arms: vec![ArmPoint { c0: 3.2, c1: 2.8 }, ArmPoint { c0: 1.4, c1: 1.2 }],
            initial_users: 8,
            eta: 3,
            rungs: 4,
            guards: GuardSpec {
                min_vmaf_pct: -0.25,
                max_play_delay_pct: 2.5,
                max_rebuffer_pct: 7.5,
            },
            base: full_experiment(),
        };
        let text = spec.to_json().to_string();
        let back = SearchSpec::from_json_str(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn minimal_object_takes_defaults() {
        let spec = ExperimentSpec::from_json_str("{}").unwrap();
        assert_eq!(spec, ExperimentSpec::default());
        let search = SearchSpec::from_json_str("{}").unwrap();
        assert_eq!(search, SearchSpec::default());
        // Partial objects override only what they name.
        let spec = ExperimentSpec::from_json_str(r#"{"seed":9,"network":{"rtt_ms":80}}"#).unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.network.rtt_ms, 80.0);
        assert_eq!(spec.network.rate_mbps, 40.0);
        assert_eq!(spec.users_per_arm, 400);
    }

    #[test]
    fn unknown_fields_are_rejected_at_every_level() {
        for (text, name) in [
            (r#"{"users":10}"#, "users"),
            (r#"{"network":{"rate":40}}"#, "rate"),
            (r#"{"transport":{"proto":"tcp"}}"#, "proto"),
            (r#"{"treatment":{"kind":"sammy","c2":1.0}}"#, "c2"),
            (r#"{"treatment":{"kind":"production","c0":1.0}}"#, "c0"),
        ] {
            let e = ExperimentSpec::from_json_str(text).unwrap_err().to_string();
            assert!(e.contains(name), "{text}: {e}");
        }
        let e = SearchSpec::from_json_str(r#"{"arms":[{"c0":1.0,"c1":1.0,"c3":0.0}]}"#)
            .unwrap_err()
            .to_string();
        assert!(e.contains("c3"), "{e}");
    }

    #[test]
    fn bad_enum_spellings_are_parse_errors() {
        let e = ExperimentSpec::from_json_str(r#"{"transport":{"protocol":"sctp"}}"#)
            .unwrap_err()
            .to_string();
        assert!(e.contains("sctp"), "{e}");
        let e = ExperimentSpec::from_json_str(r#"{"transport":{"cc":"vegas"}}"#)
            .unwrap_err()
            .to_string();
        assert!(e.contains("vegas"), "{e}");
        let e = ExperimentSpec::from_json_str(r#"{"control":{"kind":"sammy2"}}"#)
            .unwrap_err()
            .to_string();
        assert!(e.contains("sammy2"), "{e}");
    }

    #[test]
    fn arm_point_requires_both_coordinates() {
        assert!(ArmPoint::from_json(&json::parse(r#"{"c0":1.0}"#).unwrap()).is_err());
        assert!(ArmPoint::from_json(&json::parse(r#"{"c1":1.0}"#).unwrap()).is_err());
    }

    #[test]
    fn network_spec_builds_the_paper_dumbbell() {
        let d = NetworkSpec::default().dumbbell(2);
        assert_eq!(d.bottleneck_rate, Rate::from_mbps(40.0));
        assert_eq!(d.rtt, SimDuration::from_millis(5));
        assert_eq!(d.pairs, 2);
        assert_eq!(
            NetworkSpec::default().run_for(),
            SimDuration::from_secs(120)
        );
    }
}
