//! # video — the streaming substrate
//!
//! Models everything between the encoder and the screen for the Sammy
//! reproduction:
//!
//! - [`VmafModel`]: monotone concave bitrate → perceptual-quality curve
//!   standing in for VMAF (the experiments only consume per-rung scores).
//! - [`Ladder`] / [`Rung`]: encoding ladders, including the paper's lab
//!   ladder with a 3.3 Mbps top bitrate (§6).
//! - [`Title`] / [`Chunk`] / [`Lookahead`]: chunked titles with seeded VBR
//!   size wobble, stored flat with per-rung prefix sums for O(1) lookahead
//!   byte-sums.
//! - [`PlaybackBuffer`]: the client buffer obeying the update equation of
//!   Appendix A.
//! - [`CmcdRequest`]: the CMCD (CTA-5004) request payload carrying the
//!   `rtp` pace-rate hint — the paper's deployability mechanism (§3.2).
//! - [`Abr`] + [`AbrContext`] / [`AbrDecision`]: the joint bitrate +
//!   pace-rate interface Sammy plugs into.
//! - [`Player`]: a sans-IO player state machine (startup → playing →
//!   rebuffering → ended) producing [`ChunkRequest`]s and QoE accounting.
//! - [`QoeAccumulator`] / [`QoeSummary`]: play delay, rebuffers,
//!   time-weighted VMAF, initial VMAF (first 20 s), average bitrate.
//! - [`ThroughputHistory`]: chunk throughput measurements and the
//!   estimators ABR algorithms consume.
//! - [`VideoClientEndpoint`]: the packet-level client on netsim, speaking
//!   requests with an application-informed pacing header to a
//!   [`transport::SenderEndpoint`] server.

#![warn(missing_docs)]

pub mod abr_api;
pub mod buffer;
pub mod cmcd;
pub mod history;
pub mod ladder;
pub mod netclient;
pub mod player;
pub mod qoe;
pub mod title;
pub mod vmaf;

pub use abr_api::{Abr, AbrContext, AbrDecision, FixedRung, LowestRung, PlayerPhase};
pub use buffer::PlaybackBuffer;
pub use cmcd::CmcdRequest;
pub use history::{ChunkMeasurement, ThroughputHistory};
pub use ladder::{Ladder, Rung};
pub use netclient::VideoClientEndpoint;
pub use player::{ChunkRequest, Player, PlayerConfig, PlayerState};
pub use qoe::{QoeAccumulator, QoeSummary, INITIAL_VMAF_WINDOW};
pub use title::{Chunk, Lookahead, Title, TitleConfig};
pub use vmaf::VmafModel;
