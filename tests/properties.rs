//! Cross-crate property-based tests on core invariants.

use proptest::prelude::*;
use sammy_repro::abr;
use sammy_repro::fluidsim::{download_chunk, FluidConfig, NetworkProfile};
use sammy_repro::netsim::{Rate, SimDuration};
use sammy_repro::sammy_core::analysis;
use sammy_repro::sammy_core::PaceSelector;
use sammy_repro::video::{Ladder, Title, TitleConfig, VmafModel};

fn profile(capacity_mbps: f64) -> NetworkProfile {
    NetworkProfile {
        capacity: Rate::from_mbps(capacity_mbps),
        base_rtt: SimDuration::from_millis(30),
        bufferbloat: SimDuration::from_millis(40),
        ambient_loss: 0.001,
        self_loss: 0.01,
        jitter_cv: 0.0,
        fade_prob: 0.0,
        fade_depth: 0.1,
    }
}

proptest! {
    /// The pace multiplier always lies between c1 and c0.
    #[test]
    fn pace_multiplier_bounded(c0 in 0.5f64..8.0, c1 in 0.5f64..8.0, fill in -0.5f64..1.5) {
        let p = PaceSelector::new(c0, c1);
        let m = p.multiplier(fill);
        let (lo, hi) = if c0 < c1 { (c0, c1) } else { (c1, c0) };
        prop_assert!(m >= lo - 1e-12 && m <= hi + 1e-12);
    }

    /// Theorem A.1 round trip: buffer_after and achievable_bitrate are
    /// inverses.
    #[test]
    fn theorem_a1_roundtrip(
        b0 in 0.0f64..300.0,
        dur in 10.0f64..3600.0,
        tput in 1e6f64..1e8,
        ratio in 0.05f64..1.0,
    ) {
        let bitrate = tput * ratio;
        let b_end = analysis::buffer_after(b0, dur, bitrate, tput);
        let back = analysis::achievable_bitrate(b0, b_end, dur, tput);
        prop_assert!((back - bitrate).abs() / bitrate < 1e-9);
    }

    /// Eq. 1: the minimum throughput decreases monotonically with buffer
    /// and scales linearly with the bitrate.
    #[test]
    fn eq1_monotonicity(beta in 0.1f64..1.0, r in 1e5f64..2e7, b in 0.0f64..200.0) {
        let d_t = 20.0;
        let x1 = analysis::min_throughput_for_bitrate(beta, r, b, d_t);
        let x2 = analysis::min_throughput_for_bitrate(beta, r, b + 10.0, d_t);
        prop_assert!(x2 < x1);
        let x_double = analysis::min_throughput_for_bitrate(beta, 2.0 * r, b, d_t);
        prop_assert!((x_double - 2.0 * x1).abs() / x1 < 1e-9);
    }

    /// Fluid download time is monotone: more bytes never download faster,
    /// and — within the uncongested regime — a higher pace never downloads
    /// slower. (Crossing the congestion boundary legitimately inflates the
    /// RTT, which can slow a tiny transfer; that is the behaviour Sammy
    /// exploits, not a model bug.)
    #[test]
    fn fluid_download_monotone(
        bytes in 10_000u64..10_000_000,
        pace_ratio in 0.05f64..0.45,
        cap in 5.0f64..200.0,
    ) {
        let pace_mbps = cap * pace_ratio; // 2x pace still below capacity
        let p = profile(cap);
        let cfg = FluidConfig::default();
        let t1 = download_chunk(&p, &cfg, bytes, Some(Rate::from_mbps(pace_mbps)), false, 1.0)
            .download_time;
        let t2 = download_chunk(&p, &cfg, bytes * 2, Some(Rate::from_mbps(pace_mbps)), false, 1.0)
            .download_time;
        prop_assert!(t2 >= t1);
        let t3 = download_chunk(&p, &cfg, bytes, Some(Rate::from_mbps(pace_mbps * 2.0)), false, 1.0)
            .download_time;
        prop_assert!(t3 <= t1);
    }

    /// The fluid model never reports a throughput above min(pace, capacity).
    #[test]
    fn fluid_throughput_bounded(
        bytes in 100_000u64..5_000_000,
        pace_mbps in 1.0f64..200.0,
        cap in 2.0f64..150.0,
        cold in any::<bool>(),
    ) {
        let p = profile(cap);
        let out = download_chunk(
            &p,
            &FluidConfig::default(),
            bytes,
            Some(Rate::from_mbps(pace_mbps)),
            cold,
            1.0,
        );
        let tput_mbps = bytes as f64 * 8.0 / out.download_time.as_secs_f64() / 1e6;
        prop_assert!(tput_mbps <= pace_mbps.min(cap) * 1.001,
            "tput {tput_mbps} exceeds min(pace {pace_mbps}, cap {cap})");
    }

    /// HYB never selects a rung whose bitrate exceeds the analytical cap.
    #[test]
    fn hyb_respects_analytic_cap(tput_mbps in 0.5f64..100.0, buffer_s in 0u64..200) {
        use sammy_repro::video::{AbrContext, Abr, ChunkMeasurement, PlayerPhase, ThroughputHistory};
        use sammy_repro::netsim::SimTime;

        let title = Title::generate(
            Ladder::hd(&VmafModel::standard()),
            &TitleConfig { size_cv: 0.0, ..Default::default() },
        );
        let mut h = ThroughputHistory::new();
        for i in 0..5 {
            h.record(ChunkMeasurement {
                index: i,
                rung: 0,
                bytes: (tput_mbps * 1e6 / 8.0) as u64,
                download_time: SimDuration::from_secs(1),
                completed_at: SimTime::ZERO,
            });
        }
        let mut hyb = abr::Hyb::default();
        let ctx = AbrContext {
            now: SimTime::ZERO,
            phase: PlayerPhase::Playing,
            buffer: SimDuration::from_secs(buffer_s),
            max_buffer: SimDuration::from_secs(240),
            ladder: &title.ladder,
            upcoming: title.upcoming(0),
            history: &h,
            last_rung: None,
        };
        let d = hyb.select(&ctx);
        let cap = analysis::max_bitrate_for_throughput(0.5, tput_mbps * 1e6, buffer_s as f64, 20.0);
        prop_assert!(
            title.ladder.rung(d.rung).bitrate.bps() <= cap * 1.001,
            "rung {} bitrate {} exceeds cap {cap}",
            d.rung,
            title.ladder.rung(d.rung).bitrate.bps()
        );
    }

    /// Sammy's default parameters keep headroom over the Eq. 1 threshold
    /// for every buffer capacity and HYB beta in the practical range.
    #[test]
    fn sammy_defaults_always_safe(beta in 0.4f64..1.0, max_buf in 60.0f64..600.0) {
        let headroom = PaceSelector::default().validate_against_threshold(beta, 20.0, max_buf);
        prop_assert!(headroom >= 1.0, "headroom {headroom} at beta {beta}");
    }
}
