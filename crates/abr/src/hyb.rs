//! The HYB algorithm with lookahead — the throughput-based ABR the paper
//! analyzes in §4.2 to derive Sammy's pace-rate lower bound.
//!
//! HYB computes a throughput estimate `x` from recent chunk measurements,
//! discounts it by a safety parameter `β ∈ (0, 1]` to offset prediction
//! error, and simulates the buffer over the lookahead horizon using the
//! standard update equation (Appendix A):
//!
//! `B_T = B_0 + D_T − D_T · r / (βx)`
//!
//! It picks the highest rung that keeps the simulated buffer above zero,
//! which implies the selection constraint `r ≤ βx (1 + B_0 / D_T)` of
//! Fig 2a and the minimum-throughput corollary (Eq. 1) of Fig 2b.

use video::{Abr, AbrContext, AbrDecision, ChunkMeasurement};

/// Configuration for [`Hyb`].
#[derive(Debug, Clone, Copy)]
pub struct HybConfig {
    /// Throughput discount β.
    pub beta: f64,
    /// Number of recent chunks in the throughput estimate.
    pub window: usize,
    /// Lookahead horizon in chunks (`T`).
    pub lookahead: usize,
}

impl Default for HybConfig {
    fn default() -> Self {
        HybConfig {
            beta: 0.5,
            window: 5,
            lookahead: 5,
        }
    }
}

/// Throughput-based ABR with lookahead buffer simulation.
#[derive(Debug, Clone)]
pub struct Hyb {
    cfg: HybConfig,
}

impl Hyb {
    /// Create a HYB instance.
    ///
    /// # Panics
    /// Panics on a non-positive β or an empty lookahead.
    pub fn new(cfg: HybConfig) -> Self {
        assert!(cfg.beta > 0.0 && cfg.beta <= 1.0, "beta must be in (0,1]");
        assert!(cfg.lookahead >= 1, "lookahead must be at least one chunk");
        Hyb { cfg }
    }

    /// The β parameter.
    pub fn beta(&self) -> f64 {
        self.cfg.beta
    }
}

impl Default for Hyb {
    fn default() -> Self {
        Hyb::new(HybConfig::default())
    }
}

impl Abr for Hyb {
    fn select(&mut self, ctx: &AbrContext<'_>) -> AbrDecision {
        let Some(est) = ctx.history.harmonic_mean_last(self.cfg.window) else {
            // No measurements yet: start at the bottom.
            return AbrDecision::unpaced(ctx.ladder.lowest());
        };
        let bx = self.cfg.beta * est.bps();
        if bx <= 0.0 {
            return AbrDecision::unpaced(ctx.ladder.lowest());
        }
        let horizon = self.cfg.lookahead.min(ctx.upcoming.len());

        // Try rungs from the top down; keep the simulated buffer positive
        // over the horizon.
        for rung in (0..ctx.ladder.len()).rev() {
            let mut buf = ctx.buffer.as_secs_f64();
            let mut ok = true;
            for i in 0..horizon {
                let chunk = ctx.upcoming.chunk(i);
                // Standard buffer update (Appendix A): B += d_t − Δ_t.
                // Playback of already-buffered content continues while the
                // chunk downloads, so the step is applied as a whole and
                // the constraint is B_t > 0 after each step.
                let dl = chunk.size(rung) as f64 * 8.0 / bx;
                buf += chunk.duration().as_secs_f64() - dl;
                if buf <= 0.0 {
                    ok = false;
                    break;
                }
            }
            if ok {
                return AbrDecision::unpaced(rung);
            }
        }
        AbrDecision::unpaced(ctx.ladder.lowest())
    }

    fn on_chunk_downloaded(&mut self, _m: &ChunkMeasurement) {}

    fn name(&self) -> &'static str {
        "hyb"
    }
}

/// The analytical form of HYB's decision rule (§4.2): the highest bitrate
/// satisfying `r ≤ βx (1 + B0 / D_T)`. Used by the Fig 2 reproduction and by
/// tests to cross-validate the simulation-based selection above.
pub fn hyb_max_bitrate_bps(beta: f64, throughput_bps: f64, buffer_s: f64, horizon_s: f64) -> f64 {
    assert!(horizon_s > 0.0);
    beta * throughput_bps * (1.0 + buffer_s / horizon_s)
}

/// The minimum throughput estimate needed to select bitrate `r` (Eq. 1 /
/// Fig 2b): `x ≥ (r/β) (1 + B0/D_T)^{-1}`.
pub fn hyb_min_throughput_bps(beta: f64, bitrate_bps: f64, buffer_s: f64, horizon_s: f64) -> f64 {
    assert!(horizon_s > 0.0);
    bitrate_bps / beta / (1.0 + buffer_s / horizon_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Rate, SimDuration, SimTime};
    use video::{Ladder, PlayerPhase, ThroughputHistory, Title, TitleConfig, VmafModel};

    fn title() -> Title {
        Title::generate(
            Ladder::hd(&VmafModel::standard()),
            &TitleConfig {
                size_cv: 0.0,
                ..Default::default()
            },
        )
    }

    fn history_at(mbps: f64) -> ThroughputHistory {
        let mut h = ThroughputHistory::new();
        for i in 0..10 {
            h.record(ChunkMeasurement {
                index: i,
                rung: 0,
                bytes: (mbps * 1e6 / 8.0) as u64,
                download_time: SimDuration::from_secs(1),
                completed_at: SimTime::ZERO,
            });
        }
        h
    }

    fn ctx<'a>(t: &'a Title, h: &'a ThroughputHistory, buffer_s: u64) -> AbrContext<'a> {
        AbrContext {
            now: SimTime::ZERO,
            phase: PlayerPhase::Playing,
            buffer: SimDuration::from_secs(buffer_s),
            max_buffer: SimDuration::from_secs(240),
            ladder: &t.ladder,
            upcoming: t.upcoming(0),
            history: h,
            last_rung: None,
        }
    }

    #[test]
    fn no_history_picks_lowest() {
        let t = title();
        let h = ThroughputHistory::new();
        let d = Hyb::default().select(&ctx(&t, &h, 0));
        assert_eq!(d.rung, 0);
        assert_eq!(d.pace, None);
    }

    #[test]
    fn empty_buffer_needs_one_over_beta_headroom() {
        // β=0.5, empty buffer: needs throughput ≥ 2x the bitrate.
        let t = title();
        let mut hyb = Hyb::default();
        // 3 Mbps rung (index 6) requires ≥ 6 Mbps throughput at B0=0.
        let h = history_at(6.5);
        let d = hyb.select(&ctx(&t, &h, 0));
        assert_eq!(t.ladder.rung(d.rung).bitrate, Rate::from_mbps(3.0));
        // Just below the threshold drops one rung.
        let h = history_at(5.5);
        let d = hyb.select(&ctx(&t, &h, 0));
        assert!(t.ladder.rung(d.rung).bitrate < Rate::from_mbps(3.0));
    }

    #[test]
    fn larger_buffer_allows_higher_bitrate() {
        let t = title();
        let mut hyb = Hyb::default();
        let h = history_at(6.0);
        let d_empty = hyb.select(&ctx(&t, &h, 0));
        let d_full = hyb.select(&ctx(&t, &h, 60));
        assert!(
            d_full.rung > d_empty.rung,
            "buffer must unlock higher rungs: {} vs {}",
            d_full.rung,
            d_empty.rung
        );
    }

    #[test]
    fn simulation_matches_analytical_rule() {
        let t = title();
        let mut hyb = Hyb::default();
        for &mbps in &[1.0, 2.0, 4.0, 8.0, 16.0, 40.0] {
            for &buf in &[0u64, 8, 20, 60] {
                let h = history_at(mbps);
                let d = hyb.select(&ctx(&t, &h, buf));
                // Horizon: 5 chunks x 4 s = 20 s. The analytical constraint
                // uses B0 at selection; the simulated buffer passes through
                // a pre-chunk dip, making simulation slightly more
                // conservative — it must never pick a *higher* rung.
                let cap = hyb_max_bitrate_bps(0.5, mbps * 1e6, buf as f64, 20.0);
                let analytic = t.ladder.highest_at_most(Rate::from_bps(cap));
                assert!(
                    d.rung <= analytic,
                    "mbps={mbps} buf={buf}: sim {} > analytic {analytic}",
                    d.rung
                );
                assert!(
                    analytic - d.rung <= 1,
                    "sim more than one rung below analytic: mbps={mbps} buf={buf}"
                );
            }
        }
    }

    #[test]
    fn eq1_roundtrip() {
        // Min-throughput and max-bitrate forms are inverses.
        let r = 10e6;
        let x = hyb_min_throughput_bps(0.5, r, 8.0, 20.0);
        let back = hyb_max_bitrate_bps(0.5, x, 8.0, 20.0);
        assert!((back - r).abs() / r < 1e-12);
        // Empty buffer, β=0.5: min throughput is twice the bitrate.
        assert!((hyb_min_throughput_bps(0.5, r, 0.0, 20.0) - 2.0 * r).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn invalid_beta_panics() {
        Hyb::new(HybConfig {
            beta: 0.0,
            ..Default::default()
        });
    }
}
