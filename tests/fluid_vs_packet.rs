//! Calibration tests: the fluid simulator's per-chunk download model must
//! agree with the packet simulator on the quantities the A/B experiments
//! depend on — download times, the paced/unpaced throughput split, and the
//! presence/absence of queueing.

use sammy_repro::fluidsim::{download_chunk, FluidConfig, NetworkProfile};
use sammy_repro::netsim::{
    Dumbbell, DumbbellConfig, FlowId, Packet, Payload, Rate, SimDuration, SimTime, Simulator,
};
use sammy_repro::sammy_bench::lab::{
    chaos_fluid_download, chaos_packet_download, chaos_profile, CrossTraffic,
};
use sammy_repro::sammy_bench::shared::run_cells;
use sammy_repro::transport::{ReceiverEndpoint, SenderEndpoint, TcpConfig};

/// Run one transfer over the packet simulator, returning the wall-clock
/// download time in seconds (request to full delivery).
fn packet_download(bytes: u64, pace_bps: Option<f64>, capacity_mbps: f64, rtt_ms: u64) -> f64 {
    let mut sim = Simulator::new();
    let db = Dumbbell::build(
        &mut sim,
        DumbbellConfig {
            bottleneck_rate: Rate::from_mbps(capacity_mbps),
            rtt: SimDuration::from_millis(rtt_ms),
            ..Default::default()
        },
    );
    let flow = FlowId(1);
    sim.set_endpoint(
        db.left[0],
        Box::new(SenderEndpoint::new(
            db.left[0],
            db.right[0],
            flow,
            TcpConfig::default(),
        )),
    );
    sim.set_endpoint(
        db.right[0],
        Box::new(ReceiverEndpoint::new(db.right[0], db.left[0], flow)),
    );
    let req = Packet::new(
        db.right[0],
        db.left[0],
        flow,
        Payload::Request {
            id: 0,
            size: bytes,
            pace_bps,
        },
    );
    sim.inject(db.right[0], req);
    sim.run_until(SimTime::from_secs(120));
    let server: &mut SenderEndpoint = sim.endpoint_mut(db.left[0]).unwrap();
    assert_eq!(server.completed.len(), 1, "transfer must complete");
    let t = server.completed[0];
    t.completed_at.saturating_since(SimTime::ZERO).as_secs_f64()
}

fn fluid_profile(capacity_mbps: f64, rtt_ms: u64) -> NetworkProfile {
    NetworkProfile {
        capacity: Rate::from_mbps(capacity_mbps),
        base_rtt: SimDuration::from_millis(rtt_ms),
        bufferbloat: SimDuration::from_millis(10),
        ambient_loss: 0.0,
        self_loss: 0.0,
        jitter_cv: 0.0,
        fade_prob: 0.0,
        fade_depth: 0.1,
    }
}

#[test]
fn paced_download_times_agree() {
    // 2 MB paced at 10 Mbps over a 40 Mbps / 5 ms path: both models should
    // be close to 1.6 s.
    let pkt = packet_download(2_000_000, Some(10e6), 40.0, 5);
    let fluid = download_chunk(
        &fluid_profile(40.0, 5),
        &FluidConfig::default(),
        2_000_000,
        Some(Rate::from_mbps(10.0)),
        true,
        1.0,
    )
    .download_time
    .as_secs_f64();
    let rel = (pkt - fluid).abs() / pkt;
    assert!(
        rel < 0.10,
        "packet {pkt:.3}s vs fluid {fluid:.3}s (rel {rel:.3})"
    );
}

#[test]
fn unpaced_download_times_agree_within_slow_start_error() {
    // 4 MB unpaced over 40 Mbps / 5 ms: ideal 0.8 s plus slow-start ramp.
    let pkt = packet_download(4_000_000, None, 40.0, 5);
    let fluid = download_chunk(
        &fluid_profile(40.0, 5),
        &FluidConfig::default(),
        4_000_000,
        None,
        true,
        1.0,
    )
    .download_time
    .as_secs_f64();
    let rel = (pkt - fluid).abs() / pkt;
    // The packet simulator additionally pays NewReno's hole-at-a-time fast
    // recovery after the slow-start overshoot drops a window of packets —
    // a cost the fluid model intentionally omits (it hits both arms'
    // unpaced phases identically, so it cancels in A/B deltas; if anything
    // it makes the fluid model's control-arm throughput optimistic and the
    // measured Sammy-vs-control reductions conservative). Agreement within
    // 40% on this worst case, and within 10% on the paced path that
    // actually matters, is the documented calibration envelope.
    assert!(
        rel < 0.40,
        "packet {pkt:.3}s vs fluid {fluid:.3}s (rel {rel:.3})"
    );
    // And the fluid model must not be *slower* than the packet truth.
    assert!(
        fluid <= pkt,
        "fluid should lower-bound the packet time here"
    );
}

#[test]
fn congestion_boundary_matches() {
    // Pacing below capacity: the packet sim shows zero drops, matching the
    // fluid model's "not congested" state.
    let profile = fluid_profile(40.0, 5);
    let fluid_clean = download_chunk(
        &profile,
        &FluidConfig::default(),
        2_000_000,
        Some(Rate::from_mbps(10.0)),
        false,
        1.0,
    );
    assert!(!fluid_clean.congested);

    let fluid_hot = download_chunk(
        &profile,
        &FluidConfig::default(),
        2_000_000,
        None,
        false,
        1.0,
    );
    assert!(fluid_hot.congested);
}

/// The differential oracle: 220 seeded random profiles (capacity, RTT,
/// transfer size, pace, CBR cross traffic — drawn by the chaos driver in
/// `sammy_bench::lab`) run through both simulators. Per-regime envelopes
/// are calibrated on this fixed seed budget, with the paced regime — the
/// one the A/B experiments actually depend on — held much tighter than
/// the self-congested unpaced regime, whose slow-start/loss-recovery cost
/// the fluid model intentionally simplifies.
/// Calibrated envelopes (measured max over the 220-seed budget, with
/// headroom):
///
/// - **paced** (the regime the A/B experiments depend on): symmetric
///   relative error < 10% alone, < 15% against CBR cross traffic
///   (measured 6.7% / 9.3%).
/// - **unpaced** (self-congested): the packet simulator's NewReno pays a
///   hole-per-RTT recovery tail after the slow-start overshoot — roughly
///   one pipe's worth of packets, `(1 + queue_bdp_multiple) * BDP / MSS`,
///   each costing an RTT — which the fluid model intentionally omits (it
///   hits both A/B arms identically and cancels in deltas). The envelope
///   is therefore two-sided around that known term:
///   `fluid <= 1.5 * pkt` (fluid's discrete window doubling can
///   overestimate short-transfer ramps; measured 1.35) and
///   `pkt <= fluid + tail + 0.25 * pkt` (measured excess 11.5%).
#[test]
fn chaos_differential_oracle_220_profiles() {
    // Each seed's profile and both downloads are derived from the seed
    // alone, so the simulation work shards cleanly across the bench
    // worker pool (0 = all cores); `run_cells` returns results in seed
    // order regardless of scheduling, and the envelope assertions below
    // run serially over that ordered list so failure messages stay
    // deterministic.
    let seeds: Vec<u64> = (0..220u64).collect();
    let runs = run_cells(&seeds, 0, |&seed| {
        let p = chaos_profile(seed);
        let pkt = chaos_packet_download(&p);
        let fluid = chaos_fluid_download(&p);
        (p, pkt, fluid)
    });
    let mut checked = 0usize;
    for (&seed, (p, pkt, fluid)) in seeds.iter().zip(runs) {
        assert!(
            pkt.is_finite() && pkt > 0.0 && fluid.is_finite() && fluid > 0.0,
            "degenerate download time: packet {pkt}, fluid {fluid}, profile {p:?}"
        );
        match (p.pace_mbps, p.cross) {
            (Some(_), cross) => {
                let envelope = if cross == CrossTraffic::None {
                    0.10
                } else {
                    0.15
                };
                let rel = (pkt - fluid).abs() / pkt;
                assert!(
                    rel < envelope,
                    "seed {seed} [paced]: packet {pkt:.3}s vs fluid {fluid:.3}s \
                     (rel {rel:.3} > {envelope}) profile {p:?}"
                );
            }
            (None, _) => {
                assert!(
                    fluid <= 1.5 * pkt,
                    "seed {seed} [unpaced]: fluid {fluid:.3}s far above packet \
                     {pkt:.3}s — ramp model broke; profile {p:?}"
                );
                let rtt_s = p.rtt_ms as f64 / 1e3;
                let bdp_bytes = p.capacity_mbps * 1e6 * rtt_s / 8.0;
                let recovery_tail = (1.0 + 4.0) * bdp_bytes / 1460.0 * rtt_s;
                let excess = (pkt - fluid - recovery_tail) / pkt;
                assert!(
                    excess < 0.25,
                    "seed {seed} [unpaced]: packet {pkt:.3}s exceeds fluid \
                     {fluid:.3}s + recovery tail {recovery_tail:.3}s by \
                     {excess:.3} — more than loss recovery explains; \
                     profile {p:?}"
                );
            }
        }
        checked += 1;
    }
    assert!(checked >= 200, "oracle must cover at least 200 profiles");
}

#[test]
fn small_chunk_cold_start_penalty_matches_packet_sim() {
    // A 500 kB chunk on a fast (100 Mbps) link is dominated by slow start.
    // Both models must show measured throughput far below link capacity.
    let pkt_time = packet_download(500_000, None, 100.0, 20);
    let pkt_tput_mbps = 500_000.0 * 8.0 / pkt_time / 1e6;
    let fluid = download_chunk(
        &fluid_profile(100.0, 20),
        &FluidConfig::default(),
        500_000,
        None,
        true,
        1.0,
    );
    let fluid_tput_mbps = 500_000.0 * 8.0 / fluid.download_time.as_secs_f64() / 1e6;
    assert!(pkt_tput_mbps < 60.0, "packet tput {pkt_tput_mbps}");
    assert!(fluid_tput_mbps < 60.0, "fluid tput {fluid_tput_mbps}");
    let rel = (pkt_tput_mbps - fluid_tput_mbps).abs() / pkt_tput_mbps;
    assert!(
        rel < 0.35,
        "packet {pkt_tput_mbps:.1} vs fluid {fluid_tput_mbps:.1}"
    );
}
